//! Topology matrix: the paper's configurations (a)–(e) all run through
//! the same tier-generic engine and agree with in-process inference, and
//! chains deeper than the paper's (device → gateway → edge → edge →
//! cloud) are plain [`HierarchyBuilder`] instantiations.
//!
//! `just topology-matrix` sweeps this suite across `DDNN_THREADS={1,4}`
//! and `DDNN_MATRIX_DEADLINES={off,on}`; with the env var set every run
//! repeats with (generous) deadline-based degradation enabled, which must
//! not change a fault-free run's verdicts.

use ddnn_core::{
    AggregationScheme, ConvPBlock, Ddnn, DdnnConfig, EdgeConfig, ExitHead, ExitPoint,
    ExitThreshold, FeatureAggregator, Precision,
};
use ddnn_runtime::{
    run_cloud_only_baseline, run_distributed_inference, run_topology, DeadlineConfig,
    HierarchyBuilder, HierarchyConfig,
};
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::Tensor;

fn random_views(n: usize, devices: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = rng_from_seed(seed);
    (0..devices).map(|_| Tensor::rand_uniform([n, 3, 32, 32], 0.0, 1.0, &mut rng)).collect()
}

/// Generous deadlines: degradation machinery active, nothing close enough
/// to expire on a fault-free run, so verdicts must be unchanged.
fn matrix_deadlines() -> Option<DeadlineConfig> {
    std::env::var("DDNN_MATRIX_DEADLINES").is_ok().then_some(DeadlineConfig {
        aggregation_ms: 60_000,
        watchdog_ms: 120_000,
        max_retries: 2,
        suspect_after: u32::MAX,
    })
}

fn model_of(devices: usize, edge: bool) -> Ddnn {
    Ddnn::new(DdnnConfig {
        num_devices: devices,
        device_filters: 2,
        cloud_filters: [4, 8],
        edge: edge.then_some(EdgeConfig { filters: 4, agg: AggregationScheme::Concat }),
        seed: 21,
        ..DdnnConfig::default()
    })
}

/// Runs one (devices, edge) cell of the matrix and asserts the
/// distributed run agrees with in-process inference sample for sample.
fn check_cell(devices: usize, edge: bool, seed: u64) {
    let mut model = model_of(devices, edge);
    let views = random_views(6, devices, seed);
    let labels: Vec<usize> = (0..6).map(|i| i % 3).collect();
    let tl = ExitThreshold::new(0.5);
    let te = ExitThreshold::new(0.7);
    let expected = model.infer(&views, tl, edge.then_some(te)).unwrap();
    let cfg = HierarchyConfig {
        local_threshold: tl,
        edge_threshold: te,
        deadlines: matrix_deadlines(),
        ..HierarchyConfig::default()
    };
    let report = run_distributed_inference(&model.partition(), &views, &labels, &cfg).unwrap();
    assert_eq!(report.predictions, expected.predictions, "devices={devices} edge={edge}");
    assert_eq!(report.exits, expected.exits, "devices={devices} edge={edge}");
    assert_eq!(report.classified_count(), 6, "devices={devices} edge={edge}");
}

#[test]
fn config_a_cloud_only_baseline() {
    // (a): all devices offload raw captures straight to the cloud.
    let mut model = model_of(2, false);
    let views = random_views(6, 2, 40);
    let labels: Vec<usize> = (0..6).map(|i| i % 3).collect();
    let cfg = HierarchyConfig { deadlines: matrix_deadlines(), ..HierarchyConfig::default() };
    let report = run_cloud_only_baseline(&model.partition(), &views, &labels, &cfg).unwrap();
    assert!(report.exits.iter().all(|&e| e == ExitPoint::Cloud));
    assert_eq!(report.classified_count(), 6);
    // Up to the wire format's 8-bit image quantization the verdicts track
    // the in-process cloud exit.
    let expected = model.predict_at(&views, ExitPoint::Cloud).unwrap();
    let agree = report.predictions.iter().zip(&expected).filter(|(a, b)| a == b).count();
    assert!(agree >= 5, "baseline diverged from cloud exit: {agree}/6");
}

#[test]
fn config_b_single_device_no_edge() {
    check_cell(1, false, 41);
}

#[test]
fn config_c_multi_device_no_edge() {
    check_cell(4, false, 42);
}

#[test]
fn config_d_single_device_with_edge() {
    check_cell(1, true, 43);
}

#[test]
fn config_e_multi_device_with_edge() {
    check_cell(3, true, 44);
}

/// A 3-exit-tier chain (device → gateway → edgeA → edgeB → core) that the
/// legacy runtime could not express: built declaratively, run end to end.
fn deep_chain(model: &Ddnn, t1: ExitThreshold, t2: ExitThreshold) -> ddnn_runtime::Topology {
    let partition = model.partition();
    let devices = partition.devices.len();
    let classes = partition.config.num_classes;
    let per_device = partition.config.device_filters;
    let mut rng = rng_from_seed(99);
    // Device maps are [f, 16, 16]; each ConvP block halves the spatial
    // extent, so the chain runs 16 → 8 → 4 → 2.
    let agg1 = FeatureAggregator::new(AggregationScheme::Concat, devices);
    let ch1 = agg1.output_channels(per_device);
    let conv1 = ConvPBlock::new(ch1, 4, Precision::Binary, &mut rng);
    let exit1 = ExitHead::new(4 * 8 * 8, classes, Precision::Binary, &mut rng);
    let agg2 = FeatureAggregator::new(AggregationScheme::AvgPool, 1);
    let conv2 = ConvPBlock::new(4, 4, Precision::Binary, &mut rng);
    let exit2 = ExitHead::new(4 * 4 * 4, classes, Precision::Binary, &mut rng);
    let agg3 = FeatureAggregator::new(AggregationScheme::AvgPool, 1);
    let conv3 = ConvPBlock::new(4, 8, Precision::Binary, &mut rng);
    let exit3 = ExitHead::new(8 * 2 * 2, classes, Precision::Binary, &mut rng);
    HierarchyBuilder::new(&partition)
        .exit_tier("edgeA", agg1, vec![conv1], exit1, t1)
        .exit_tier("edgeB", agg2, vec![conv2], exit2, t2)
        .terminal_tier("core", agg3, vec![conv3], exit3)
        .build()
        .unwrap()
}

fn link_frames(report: &ddnn_runtime::SimReport, link: &str) -> usize {
    report
        .links
        .iter()
        .find(|(name, _)| name == link)
        .unwrap_or_else(|| panic!("missing link {link}"))
        .1
        .frames
}

#[test]
fn deep_chain_forwards_through_every_tier_to_the_terminal() {
    // Thresholds at 0: normalized entropy of a softmax is strictly
    // positive, so nothing exits early — every sample must traverse
    // edgeA → edgeB → core and classify at the terminal.
    let model = model_of(2, false);
    let topology = deep_chain(&model, ExitThreshold::new(0.0), ExitThreshold::new(0.0));
    let views = random_views(4, 2, 50);
    let labels: Vec<usize> = (0..4).map(|i| i % 3).collect();
    let cfg = HierarchyConfig {
        local_threshold: ExitThreshold::new(0.0),
        deadlines: matrix_deadlines(),
        ..HierarchyConfig::default()
    };
    let report = run_topology(&topology, &views, &labels, &cfg).unwrap();
    assert!(report.exits.iter().all(|&e| e == ExitPoint::Cloud), "{:?}", report.exits);
    assert_eq!(report.classified_count(), 4);
    assert_eq!(link_frames(&report, "edgeA->edgeB"), 4);
    assert_eq!(link_frames(&report, "edgeB->core"), 4);
    assert_eq!(link_frames(&report, "core->orchestrator"), 4);
    assert_eq!(link_frames(&report, "edgeA->orchestrator"), 0);
    assert_eq!(link_frames(&report, "edgeB->orchestrator"), 0);
}

#[test]
fn deep_chain_first_tier_can_absorb_every_sample() {
    // First exit tier at threshold 1: everything exits there, reported as
    // an edge exit; downstream tiers see no traffic at all.
    let model = model_of(2, false);
    let topology = deep_chain(&model, ExitThreshold::new(1.0), ExitThreshold::new(0.0));
    let views = random_views(4, 2, 51);
    let labels: Vec<usize> = (0..4).map(|i| i % 3).collect();
    let cfg = HierarchyConfig {
        local_threshold: ExitThreshold::new(0.0),
        deadlines: matrix_deadlines(),
        ..HierarchyConfig::default()
    };
    let report = run_topology(&topology, &views, &labels, &cfg).unwrap();
    assert!(report.exits.iter().all(|&e| e == ExitPoint::Edge), "{:?}", report.exits);
    assert_eq!(report.classified_count(), 4);
    assert_eq!(link_frames(&report, "edgeA->orchestrator"), 4);
    assert_eq!(link_frames(&report, "edgeA->edgeB"), 0);
    assert_eq!(link_frames(&report, "edgeB->core"), 0);
    assert_eq!(link_frames(&report, "core->orchestrator"), 0);
}
