//! Integration tests of the distributed hierarchy: the simulator must
//! compute exactly what the in-process model computes, and its measured
//! traffic must match the paper's analytic communication model (Eq. 1).

use ddnn_core::{
    AggregationScheme, CommCostModel, Ddnn, DdnnConfig, EdgeConfig, ExitPoint, ExitThreshold,
};
use ddnn_runtime::{
    run_cloud_only_baseline, run_distributed_inference, HierarchyConfig, RuntimeError,
};
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::Tensor;

fn small_model() -> Ddnn {
    Ddnn::new(DdnnConfig {
        num_devices: 3,
        device_filters: 2,
        cloud_filters: [4, 8],
        ..DdnnConfig::default()
    })
}

fn random_views(n: usize, devices: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = rng_from_seed(seed);
    (0..devices).map(|_| Tensor::rand_uniform([n, 3, 32, 32], 0.0, 1.0, &mut rng)).collect()
}

#[test]
fn distributed_matches_in_process_inference_exactly() {
    let mut model = small_model();
    let views = random_views(12, 3, 0);
    let labels = vec![0usize; 12];
    let t = ExitThreshold::new(0.5);
    let expected = model.infer(&views, t, None).unwrap();
    let cfg = HierarchyConfig { local_threshold: t, ..HierarchyConfig::default() };
    let report = run_distributed_inference(&model.partition(), &views, &labels, &cfg).unwrap();
    assert_eq!(report.predictions, expected.predictions);
    assert_eq!(report.exits, expected.exits);
}

#[test]
fn distributed_matches_in_process_for_all_aggregation_schemes() {
    for local in AggregationScheme::ALL {
        for cloud in AggregationScheme::ALL {
            let mut cfg = DdnnConfig::with_aggregation(local, cloud);
            cfg.num_devices = 2;
            cfg.device_filters = 2;
            cfg.cloud_filters = [4, 8];
            let mut model = Ddnn::new(cfg);
            let views = random_views(5, 2, 7);
            let labels = vec![1usize; 5];
            let t = ExitThreshold::new(0.6);
            let expected = model.infer(&views, t, None).unwrap();
            let hier = HierarchyConfig { local_threshold: t, ..HierarchyConfig::default() };
            let report =
                run_distributed_inference(&model.partition(), &views, &labels, &hier).unwrap();
            assert_eq!(report.predictions, expected.predictions, "{local}-{cloud}");
            assert_eq!(report.exits, expected.exits, "{local}-{cloud}");
        }
    }
}

#[test]
fn measured_bytes_match_eq1() {
    let mut model = small_model();
    let views = random_views(10, 3, 1);
    let labels = vec![2usize; 10];
    let t = ExitThreshold::new(0.5);
    let report = run_distributed_inference(
        &model.partition(),
        &views,
        &labels,
        &HierarchyConfig { local_threshold: t, ..HierarchyConfig::default() },
    )
    .unwrap();
    let comm = CommCostModel::from_config(model.config());
    let n = 10usize;
    let offloaded = report.exits.iter().filter(|&&e| e != ExitPoint::Local).count();
    // Every sample: 4·|C| bytes per device. Every offloaded sample:
    // f·o/8 feature bytes per device, plus the 6-byte shape preamble the
    // wire format adds (not part of Eq. 1).
    let expected_payload =
        3 * (n * comm.summary_bytes() + offloaded * (comm.feature_map_bytes() + 6));
    assert_eq!(report.device_payload_bytes(), expected_payload);
    // And the in-process inference agrees on the offload count.
    let expected = model.infer(&views, t, None).unwrap();
    let model_offloaded = expected.exits.iter().filter(|&&e| e != ExitPoint::Local).count();
    assert_eq!(offloaded, model_offloaded);
}

#[test]
fn no_feature_traffic_when_everything_exits_locally() {
    let model = small_model();
    let views = random_views(6, 3, 2);
    let labels = vec![0usize; 6];
    let report = run_distributed_inference(
        &model.partition(),
        &views,
        &labels,
        &HierarchyConfig { local_threshold: ExitThreshold::new(1.0), ..HierarchyConfig::default() },
    )
    .unwrap();
    assert_eq!(report.local_exit_fraction, 1.0);
    for (name, stats) in &report.links {
        if name.contains("->cloud") {
            assert_eq!(stats.payload_bytes, 0, "unexpected cloud traffic on {name}");
        }
    }
}

#[test]
fn failed_device_matches_blank_input_semantics() {
    // The runtime substitutes the failed device's blank signature; the
    // in-process equivalent feeds a blank view through the same device.
    let mut model = small_model();
    let views = random_views(8, 3, 3);
    let labels = vec![1usize; 8];
    let t = ExitThreshold::new(0.5);
    let failed = vec![1usize];
    let blanked = ddnn_core::fail_devices(&views, &failed).unwrap();
    let expected = model.infer(&blanked, t, None).unwrap();
    let report = run_distributed_inference(
        &model.partition(),
        &views,
        &labels,
        &HierarchyConfig {
            local_threshold: t,
            failed_devices: failed,
            ..HierarchyConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.predictions, expected.predictions);
    assert_eq!(report.exits, expected.exits);
    // The failed device sends nothing.
    for (name, stats) in &report.links {
        if name.starts_with("device1->") {
            assert_eq!(stats.frames, 0, "failed device sent frames on {name}");
        }
    }
}

#[test]
fn all_devices_failed_is_a_config_error() {
    let model = small_model();
    let views = random_views(2, 3, 4);
    let labels = vec![0usize; 2];
    let err = run_distributed_inference(
        &model.partition(),
        &views,
        &labels,
        &HierarchyConfig { failed_devices: vec![0, 1, 2], ..HierarchyConfig::default() },
    )
    .unwrap_err();
    assert!(matches!(err, RuntimeError::Config { .. }));
}

#[test]
fn out_of_range_failure_is_a_config_error() {
    let model = small_model();
    let views = random_views(2, 3, 5);
    let labels = vec![0usize; 2];
    let err = run_distributed_inference(
        &model.partition(),
        &views,
        &labels,
        &HierarchyConfig { failed_devices: vec![9], ..HierarchyConfig::default() },
    )
    .unwrap_err();
    assert!(matches!(err, RuntimeError::Config { .. }));
}

#[test]
fn edge_hierarchy_runs_and_matches_in_process() {
    let mut cfg = DdnnConfig {
        num_devices: 2,
        device_filters: 2,
        cloud_filters: [4, 8],
        edge: Some(EdgeConfig { filters: 4, agg: AggregationScheme::Concat }),
        ..DdnnConfig::default()
    };
    cfg.seed = 11;
    let mut model = Ddnn::new(cfg);
    let views = random_views(10, 2, 6);
    let labels = vec![0usize; 10];
    let tl = ExitThreshold::new(0.4);
    let te = ExitThreshold::new(0.7);
    let expected = model.infer(&views, tl, Some(te)).unwrap();
    let report = run_distributed_inference(
        &model.partition(),
        &views,
        &labels,
        &HierarchyConfig { local_threshold: tl, edge_threshold: te, ..HierarchyConfig::default() },
    )
    .unwrap();
    assert_eq!(report.predictions, expected.predictions);
    assert_eq!(report.exits, expected.exits);
}

#[test]
fn latency_of_local_exits_is_lower() {
    let mut model = small_model();
    let views = random_views(16, 3, 8);
    let labels = vec![0usize; 16];
    // Pick a threshold that splits the batch.
    let t = ExitThreshold::new(0.5);
    let expected = model.infer(&views, t, None).unwrap();
    let local = expected.exit_fraction(ExitPoint::Local);
    if local == 0.0 || local == 1.0 {
        // Untrained model may not split; nothing to compare.
        return;
    }
    let report = run_distributed_inference(
        &model.partition(),
        &views,
        &labels,
        &HierarchyConfig { local_threshold: t, ..HierarchyConfig::default() },
    )
    .unwrap();
    assert!(report.mean_local_latency_ms < report.mean_offload_latency_ms);
}

#[test]
fn cloud_only_baseline_sends_raw_images_and_matches_cloud_exit() {
    let mut model = small_model();
    let views = random_views(7, 3, 9);
    let labels = vec![0usize; 7];
    let report =
        run_cloud_only_baseline(&model.partition(), &views, &labels, &HierarchyConfig::default())
            .unwrap();
    // 3072 bytes per device per sample.
    for (name, stats) in &report.links {
        if name.starts_with("device") {
            assert_eq!(stats.payload_bytes, 7 * 3072, "{name}");
        }
    }
    // Predictions match forcing every sample through the cloud exit, up to
    // the 8-bit image quantization of the wire format.
    let expected = model.predict_at(&views, ExitPoint::Cloud).unwrap();
    let agree = report.predictions.iter().zip(&expected).filter(|(a, b)| a == b).count();
    assert!(agree >= 6, "baseline diverged from cloud exit: {agree}/7");
}

#[test]
fn report_accounting_helpers() {
    let model = small_model();
    let views = random_views(4, 3, 10);
    let labels = vec![0usize; 4];
    let report =
        run_distributed_inference(&model.partition(), &views, &labels, &HierarchyConfig::default())
            .unwrap();
    let fracs = report.exit_fraction(ExitPoint::Local) + report.exit_fraction(ExitPoint::Cloud);
    assert!((fracs - 1.0).abs() < 1e-6);
    assert!(report.device_payload_per_sample(3) > 0.0);
}

#[test]
fn sim_report_is_invariant_to_thread_count() {
    // The worker-pool size must never change what the simulated hierarchy
    // computes or measures (DESIGN.md §8.2); this test owns the env-var
    // mutation so it stays self-contained within this process.
    let run = || {
        let views = random_views(10, 3, 21);
        let labels: Vec<usize> = (0..10).map(|i| i % 3).collect();
        let cfg = HierarchyConfig {
            local_threshold: ExitThreshold::new(0.5),
            ..HierarchyConfig::default()
        };
        run_distributed_inference(&small_model().partition(), &views, &labels, &cfg).unwrap()
    };
    std::env::set_var("DDNN_THREADS", "1");
    let serial = run();
    std::env::set_var("DDNN_THREADS", "4");
    let threaded = run();
    std::env::remove_var("DDNN_THREADS");
    assert_eq!(serial.predictions, threaded.predictions);
    assert_eq!(serial.exits, threaded.exits);
    assert_eq!(serial.accuracy, threaded.accuracy);
    assert_eq!(serial.local_exit_fraction, threaded.local_exit_fraction);
    assert_eq!(serial.mean_latency_ms, threaded.mean_latency_ms);
    assert_eq!(serial.links, threaded.links, "per-link traffic must be bit-identical");
}
