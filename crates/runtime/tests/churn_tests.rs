//! Chaos tests of elastic orchestration: scheduled membership churn —
//! devices, tiers and the gateway crashing and rejoining mid-run — must
//! never panic or hang the runtime; every loss must surface as a typed
//! outcome; recovery must re-parent traffic around the hole; and an empty
//! churn schedule must change nothing at all.
//!
//! `just churn-matrix` sweeps this suite across `DDNN_THREADS={1,4}` and
//! `DDNN_CHURN_RELIABILITY={legacy,arq}`; the assertions are identical in
//! every cell.

use ddnn_core::{
    AggregationScheme, Ddnn, DdnnConfig, EdgeConfig, ExitHead, ExitPoint, ExitThreshold,
    FeatureAggregator, Precision,
};
use ddnn_runtime::{
    compute_routing, run_cloud_only_baseline, run_distributed_inference, run_topology, ChurnAction,
    ChurnEvent, ChurnSchedule, ChurnTarget, Compat, DeadlineConfig, ElasticConfig, FaultPlan,
    HierarchyBuilder, HierarchyConfig, MemorySink, ObsConfig, ObsEvent, ReliabilityConfig,
    RuntimeError, SampleOutcome, SimReport, Topology,
};
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::Tensor;
use proptest::prelude::*;
use std::sync::Arc;

fn edge_model() -> Ddnn {
    Ddnn::new(DdnnConfig {
        num_devices: 3,
        device_filters: 2,
        cloud_filters: [4, 8],
        edge: Some(EdgeConfig { filters: 4, agg: AggregationScheme::Concat }),
        ..DdnnConfig::default()
    })
}

fn random_views(n: usize, devices: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = rng_from_seed(seed);
    (0..devices).map(|_| Tensor::rand_uniform([n, 3, 32, 32], 0.0, 1.0, &mut rng)).collect()
}

/// Deadlines tuned for churn runs: long enough that a loaded CI machine
/// cannot time out a healthy sample, short enough that the unavoidable
/// detection-window losses (a crashed tier is only suspected after
/// `suspect_after` missed heartbeat sweeps) resolve quickly.
fn churn_deadlines() -> DeadlineConfig {
    DeadlineConfig { aggregation_ms: 150, watchdog_ms: 800, max_retries: 1, suspect_after: 2 }
}

/// The reliability leg under test: `DDNN_CHURN_RELIABILITY=arq` (or
/// `crc`) reruns the whole suite over the checked transports.
fn churn_reliability() -> ReliabilityConfig {
    match std::env::var("DDNN_CHURN_RELIABILITY").as_deref() {
        Ok("arq") => ReliabilityConfig::arq(),
        Ok("crc") => ReliabilityConfig::crc(),
        _ => ReliabilityConfig::off(),
    }
}

fn crash(at_sample: u64, target: ChurnTarget) -> ChurnEvent {
    ChurnEvent { at_sample, target, action: ChurnAction::Crash }
}

fn rejoin(at_sample: u64, target: ChurnTarget) -> ChurnEvent {
    ChurnEvent { at_sample, target, action: ChurnAction::Rejoin }
}

fn elastic_cfg(events: Vec<ChurnEvent>) -> HierarchyConfig {
    HierarchyConfig {
        local_threshold: ExitThreshold::new(0.5),
        fault_plan: FaultPlan { churn: ChurnSchedule { events }, ..FaultPlan::none() },
        deadlines: Some(churn_deadlines()),
        elastic: Some(ElasticConfig::fast()),
        reliability: churn_reliability(),
        ..HierarchyConfig::default()
    }
}

/// A single-device relay chain whose tiers are *identity* sections (1-ary
/// average pool, no convolutions): every tier accepts both the device's
/// feature map and any other tier's output, so the compat probe makes all
/// re-parenting moves legal — the topology for exercising genuine
/// rebalancing rather than forced local exits.
fn relay_chain() -> (Ddnn, Topology) {
    let model = Ddnn::new(DdnnConfig {
        num_devices: 1,
        device_filters: 2,
        cloud_filters: [4, 8],
        ..DdnnConfig::default()
    });
    let partition = model.partition();
    let [f, h, w] = partition.config.device_map_dims();
    let classes = partition.config.num_classes;
    let mut rng = rng_from_seed(77);
    let relay_head = ExitHead::new(f * h * w, classes, Precision::Binary, &mut rng);
    let core_head = ExitHead::new(f * h * w, classes, Precision::Binary, &mut rng);
    let never = ExitThreshold::new(0.0); // normalized entropy is strictly positive
    let topology = HierarchyBuilder::new(&partition)
        .exit_tier(
            "relayA",
            FeatureAggregator::new(AggregationScheme::AvgPool, 1),
            vec![],
            relay_head.clone(),
            never,
        )
        .exit_tier(
            "relayB",
            FeatureAggregator::new(AggregationScheme::AvgPool, 1),
            vec![],
            relay_head,
            never,
        )
        .terminal_tier(
            "core",
            FeatureAggregator::new(AggregationScheme::AvgPool, 1),
            vec![],
            core_head,
        )
        .build()
        .unwrap();
    (model, topology)
}

/// Runs the relay chain with the given churn schedule; the gateway never
/// exits locally (threshold 0), so every classified sample is a verdict
/// from the feature chain.
fn run_relay(
    topology: &Topology,
    views: &[Tensor],
    labels: &[usize],
    events: Vec<ChurnEvent>,
    sink: Option<Arc<MemorySink>>,
) -> SimReport {
    let cfg = HierarchyConfig {
        local_threshold: ExitThreshold::new(0.0),
        obs: ObsConfig { sink: sink.map(|s| s as _) },
        ..elastic_cfg(events)
    };
    run_topology(topology, views, labels, &cfg).unwrap()
}

#[test]
fn empty_churn_schedule_changes_nothing() {
    // Elastic orchestration with no churn must reproduce the plain
    // deadline run exactly: same verdicts, same exits, zero epochs.
    let model = edge_model();
    let views = random_views(8, 3, 60);
    let labels = vec![0usize; 8];
    let plain = run_distributed_inference(
        &model.partition(),
        &views,
        &labels,
        &HierarchyConfig {
            local_threshold: ExitThreshold::new(0.5),
            deadlines: Some(churn_deadlines()),
            reliability: churn_reliability(),
            ..HierarchyConfig::default()
        },
    )
    .unwrap();
    let elastic =
        run_distributed_inference(&model.partition(), &views, &labels, &elastic_cfg(vec![]))
            .unwrap();
    assert_eq!(elastic.predictions, plain.predictions);
    assert_eq!(elastic.exits, plain.exits);
    assert_eq!(elastic.outcomes, plain.outcomes);
    assert_eq!(elastic.accuracy, plain.accuracy);
    assert_eq!(elastic.degraded_fraction, 0.0);
    let summary = elastic.elastic.expect("elastic runs carry a summary");
    assert_eq!(summary.epochs, 0, "no membership change, no epoch");
    assert_eq!(summary.member_joins, 0);
    assert_eq!(summary.member_leaves, 0);
    assert_eq!(summary.reparents, 0);
    assert_eq!(summary.stale_epoch_discards, 0);
    assert_eq!(summary.initial_live, 6, "3 devices + gateway + 2 tiers");
    assert_eq!(summary.final_live, 6);
    assert!(plain.elastic.is_none(), "non-elastic runs carry no summary");
}

#[test]
fn continuous_churn_survives_and_is_deterministic() {
    // The acceptance scenario: devices AND a tier crash and rejoin while
    // samples flow. The run must complete with typed outcomes only, the
    // membership ledger must balance, and the whole thing must be
    // reproducible event for event.
    let model = edge_model();
    let views = random_views(14, 3, 61);
    let labels: Vec<usize> = (0..14).map(|i| i % 3).collect();
    let events = vec![
        crash(2, ChurnTarget::Device(1)),
        crash(4, ChurnTarget::Device(2)),
        crash(5, ChurnTarget::Tier("edge".to_string())),
        rejoin(6, ChurnTarget::Device(1)),
        rejoin(9, ChurnTarget::Device(2)),
        rejoin(10, ChurnTarget::Tier("edge".to_string())),
        crash(11, ChurnTarget::Device(0)),
        rejoin(13, ChurnTarget::Device(0)),
    ];
    let run = || {
        run_distributed_inference(&model.partition(), &views, &labels, &elastic_cfg(events.clone()))
            .unwrap()
    };
    let a = run();
    assert_eq!(a.predictions.len(), 14);
    // Every sample resolved to a typed outcome; the losses (if any) are
    // watchdog timeouts, surfaced as typed errors — never a panic, never
    // a hang.
    for i in 0..14 {
        match a.outcomes[i] {
            SampleOutcome::Classified => assert!(a.sample_result(i).is_ok()),
            SampleOutcome::TimedOut { .. } | SampleOutcome::Shed => {
                assert!(matches!(a.sample_result(i).unwrap_err(), RuntimeError::Timeout { .. }));
            }
        }
    }
    let summary = a.elastic.clone().expect("elastic summary");
    assert!(summary.epochs > 0, "churn must publish new epochs");
    assert!(summary.member_leaves >= 4, "four crashes: {summary:?}");
    assert!(summary.member_joins >= 4, "four rejoins: {summary:?}");
    assert_eq!(summary.final_live, summary.initial_live, "everything rejoined");
    // Detection-window losses are bounded: each of the four crashes can
    // cost at most the suspect window before routing heals around it.
    assert!(a.classified_count() >= 6, "degradation cliff: {:?}", a.outcomes);

    // Determinism: the same schedule and seed reproduce the run exactly
    // (verdicts, outcomes and the membership ledger; link-level timing
    // stats are allowed to differ).
    let b = run();
    assert_eq!(b.predictions, a.predictions);
    assert_eq!(b.exits, a.exits);
    assert_eq!(b.outcomes, a.outcomes);
    assert_eq!(b.elastic, a.elastic);
}

#[test]
fn tier_crash_reparents_the_device_and_rejoin_restores_the_chain() {
    // relayA dies mid-run: the device must re-parent to relayB (nearest
    // surviving compatible tier), and the rejoin must restore the
    // declared chain — both moves visible as reparent events and epochs.
    let (_model, topology) = relay_chain();
    let views = random_views(12, 1, 62);
    let labels = vec![0usize; 12];
    let sink = Arc::new(MemorySink::default());
    let clean = run_relay(&topology, &views, &labels, vec![], None);
    assert_eq!(clean.classified_count(), 12);
    let report = run_relay(
        &topology,
        &views,
        &labels,
        vec![
            crash(2, ChurnTarget::Tier("relayA".to_string())),
            rejoin(7, ChurnTarget::Tier("relayA".to_string())),
        ],
        Some(sink.clone()),
    );
    let summary = report.elastic.clone().expect("elastic summary");
    assert!(summary.epochs >= 2, "leave + rejoin: {summary:?}");
    assert!(summary.member_leaves >= 1);
    assert!(summary.member_joins >= 1);
    assert!(summary.reparents >= 2, "away and back: {summary:?}");
    assert_eq!(summary.final_live, summary.initial_live);

    let events = sink.events();
    let reparents: Vec<(String, String, String)> = events
        .iter()
        .filter_map(|(_, e)| match e {
            ObsEvent::Reparent { child, from, to, .. } => {
                Some((child.clone(), from.clone(), to.clone()))
            }
            _ => None,
        })
        .collect();
    assert!(
        reparents.contains(&("device0".to_string(), "relayA".to_string(), "relayB".to_string())),
        "device must re-parent to the surviving relay: {reparents:?}"
    );
    assert!(
        reparents.contains(&("device0".to_string(), "relayB".to_string(), "relayA".to_string())),
        "rejoin must restore the declared chain: {reparents:?}"
    );
    assert!(events
        .iter()
        .any(|(_, e)| matches!(e, ObsEvent::MemberLeave { node, .. } if node == "relayA")));
    assert!(events
        .iter()
        .any(|(_, e)| matches!(e, ObsEvent::MemberJoin { node, .. } if node == "relayA")));

    // The relays are identity sections, so every *classified* sample gets
    // the same terminal verdict whichever relay carried it — the hole in
    // the chain costs detection-window timeouts, never wrong answers.
    let mut classified = 0;
    for i in 0..12 {
        if matches!(report.outcomes[i], SampleOutcome::Classified) {
            assert_eq!(report.predictions[i], clean.predictions[i], "sample {i}");
            assert_eq!(report.exits[i], ExitPoint::Cloud, "sample {i}");
            classified += 1;
        }
    }
    assert!(classified >= 8, "detection window too costly: {:?}", report.outcomes);
}

#[test]
fn gateway_crash_is_bypassed_by_the_orchestrator() {
    // The gateway dies and never returns: after the suspect window the
    // orchestrator broadcasts the offload requests itself, so every later
    // sample classifies on the feature chain instead of stalling forever.
    let (_model, topology) = relay_chain();
    let views = random_views(12, 1, 63);
    let labels = vec![0usize; 12];
    let sink = Arc::new(MemorySink::default());
    let report = run_relay(
        &topology,
        &views,
        &labels,
        vec![crash(3, ChurnTarget::Gateway)],
        Some(sink.clone()),
    );
    let summary = report.elastic.clone().expect("elastic summary");
    assert_eq!(summary.final_live, summary.initial_live - 1, "the gateway never rejoined");
    assert!(summary.epochs >= 1);
    assert!(sink
        .events()
        .iter()
        .any(|(_, e)| matches!(e, ObsEvent::MemberLeave { node, .. } if node == "gateway")));
    // Samples before the crash and after the bypass both classify; only
    // the detection window may time out.
    for i in 0..3 {
        assert!(matches!(report.outcomes[i], SampleOutcome::Classified), "sample {i}");
    }
    for i in 6..12 {
        assert!(
            matches!(report.outcomes[i], SampleOutcome::Classified),
            "sample {i} after bypass: {:?}",
            report.outcomes[i]
        );
        assert_ne!(report.exits[i], ExitPoint::Local, "no gateway, no local exit");
    }
}

#[test]
fn degradation_has_no_cliff_as_churn_intensifies() {
    // Scoring the run against its own clean predictions isolates the cost
    // of churn: light churn (one tier bounce) and heavy churn (both
    // relays bounce and the gateway dies) must degrade gradually —
    // bounded detection losses, never a collapse.
    let (_model, topology) = relay_chain();
    let views = random_views(16, 1, 64);
    let clean = run_relay(&topology, &views, &[0usize; 16], vec![], None);
    let labels = clean.predictions.clone();
    let light = run_relay(
        &topology,
        &views,
        &labels,
        vec![
            crash(4, ChurnTarget::Tier("relayA".to_string())),
            rejoin(8, ChurnTarget::Tier("relayA".to_string())),
        ],
        None,
    );
    let heavy = run_relay(
        &topology,
        &views,
        &labels,
        vec![
            crash(4, ChurnTarget::Tier("relayA".to_string())),
            rejoin(8, ChurnTarget::Tier("relayA".to_string())),
            crash(10, ChurnTarget::Tier("relayB".to_string())),
            rejoin(13, ChurnTarget::Tier("relayB".to_string())),
            crash(12, ChurnTarget::Gateway),
        ],
        None,
    );
    assert!(light.accuracy >= 0.75, "light churn lost too much: {}", light.accuracy);
    assert!(heavy.accuracy >= 0.5, "heavy churn collapsed: {}", heavy.accuracy);
    assert!(
        light.accuracy - heavy.accuracy <= 0.375,
        "cliff between light ({}) and heavy ({}) churn",
        light.accuracy,
        heavy.accuracy
    );
}

#[test]
fn churn_configuration_is_validated_up_front() {
    let model = edge_model();
    let views = random_views(2, 3, 65);
    let labels = vec![0usize; 2];
    let schedule = vec![crash(0, ChurnTarget::Device(0)), rejoin(1, ChurnTarget::Device(0))];

    // Churn without the elastic control plane is meaningless.
    let mut cfg = elastic_cfg(schedule.clone());
    cfg.elastic = None;
    let err = run_distributed_inference(&model.partition(), &views, &labels, &cfg).unwrap_err();
    assert!(matches!(err, RuntimeError::Config { .. }), "{err}");

    // Elastic orchestration needs deadlines to detect anything.
    let mut cfg = elastic_cfg(vec![]);
    cfg.deadlines = None;
    let err = run_distributed_inference(&model.partition(), &views, &labels, &cfg).unwrap_err();
    assert!(matches!(err, RuntimeError::Config { .. }), "{err}");

    // A churn target must name a real node.
    let cfg = elastic_cfg(vec![crash(0, ChurnTarget::Tier("fog".to_string()))]);
    let err = run_distributed_inference(&model.partition(), &views, &labels, &cfg).unwrap_err();
    assert!(matches!(err, RuntimeError::Config { .. }), "{err}");

    // The cloud-only baseline has nothing to rebalance.
    let err = run_cloud_only_baseline(&model.partition(), &views, &labels, &elastic_cfg(vec![]))
        .unwrap_err();
    assert!(matches!(err, RuntimeError::Config { .. }), "{err}");
}

proptest! {
    #[test]
    fn computed_routing_is_always_well_formed(
        d2t in prop::collection::vec(0u8..2, 3),
        t2t in prop::collection::vec(0u8..2, 3),
        live_bits in prop::collection::vec(0u8..2, 6),
        epoch in 0u64..1000,
    ) {
        // 2 devices + gateway + 3 tiers with an arbitrary compat matrix
        // and an arbitrary live set: the computed table must satisfy its
        // own structural validator, except in exactly one degenerate case
        // — live devices, a dead gateway, and no tier able to take device
        // traffic — which run validation rejects before any routing runs.
        let compat = Compat {
            device_to_tier: d2t.iter().map(|&b| b == 1).collect(),
            tier_to_tier: vec![
                vec![false, t2t[0] == 1, t2t[1] == 1],
                vec![false, false, t2t[2] == 1],
                vec![false, false, false],
            ],
        };
        let live: Vec<bool> = live_bits.iter().map(|&b| b == 1).collect();
        let r = compute_routing(epoch, live.clone(), 2, &compat);
        prop_assert_eq!(r.epoch, epoch);
        let degenerate = (live[0] || live[1]) && !live[2] && r.device_parent.is_none();
        prop_assert_eq!(r.is_well_formed(&compat), !degenerate);
        // The escalation path is strictly increasing, so routing can
        // never loop whatever the membership does.
        let path = r.escalation_path();
        for pair in path.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
    }
}
