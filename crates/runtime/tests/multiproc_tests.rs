//! Multi-process integration suite: the launcher must run the hierarchy
//! as real OS processes over localhost sockets and agree verdict for
//! verdict with the in-process runner on the same seeded configuration —
//! and it must reject, before spawning anything, every configuration
//! whose state cannot span process boundaries.

use ddnn_core::{AggregationScheme, Ddnn, DdnnConfig, EdgeConfig, ExitThreshold};
use ddnn_runtime::{
    multiproc, run_topology, DeadlineConfig, ElasticConfig, HierarchyConfig, ReliabilityConfig,
    RuntimeError, SimReport, Topology, TransportConfig,
};
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::Tensor;
use std::path::Path;

/// The `ddnn-node` binary Cargo built alongside this test.
fn node_exe() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_ddnn-node"))
}

fn edge_model() -> Ddnn {
    Ddnn::new(DdnnConfig {
        num_devices: 2,
        device_filters: 2,
        cloud_filters: [4, 8],
        edge: Some(EdgeConfig { filters: 4, agg: AggregationScheme::Concat }),
        seed: 11,
        ..DdnnConfig::default()
    })
}

fn random_views(n: usize, devices: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = rng_from_seed(seed);
    (0..devices).map(|_| Tensor::rand_uniform([n, 3, 32, 32], 0.0, 1.0, &mut rng)).collect()
}

fn cfg(transport: TransportConfig) -> HierarchyConfig {
    HierarchyConfig {
        local_threshold: ExitThreshold::new(0.4),
        edge_threshold: ExitThreshold::new(0.7),
        deadlines: Some(DeadlineConfig::default()),
        reliability: ReliabilityConfig::arq(),
        transport,
        ..HierarchyConfig::default()
    }
}

/// Runs the same seeded workload in-process and as four OS processes,
/// asserting verdict-for-verdict agreement.
fn assert_multiproc_matches(transport: TransportConfig) {
    let model = edge_model();
    let n = 6usize;
    let views = random_views(n, 2, 6);
    let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
    let cfg = cfg(transport);

    let topology = Topology::from_partition(&model.partition());
    let reference = run_topology(
        &topology,
        &views,
        &labels,
        &HierarchyConfig { transport: TransportConfig::Channel, ..cfg.clone() },
    )
    .unwrap();
    let multi = multiproc::launch(node_exe(), model.config(), &views, &labels, &cfg)
        .unwrap_or_else(|e| panic!("{} launch failed: {e}", transport.name()));

    let key = |r: &SimReport| (r.predictions.clone(), r.exits.clone(), r.accuracy.to_bits());
    assert_eq!(key(&multi), key(&reference), "{} processes diverged", transport.name());
    assert_eq!(multi.mean_latency_ms.to_bits(), reference.mean_latency_ms.to_bits());
    // Every tracked link did real work in the process mesh, and the
    // report still carries the full canonical link list.
    assert_eq!(multi.links.len(), reference.links.len());
    for ((name, st), (_, ref_st)) in multi.links.iter().zip(&reference.links) {
        assert_eq!(st.frames, ref_st.frames, "frame count diverged on {name}");
    }
    assert_eq!(multi.device_timeouts, vec![0, 0]);
    assert_eq!(multi.capture_retries, 0);
}

#[test]
fn four_process_tcp_run_matches_in_process_verdicts() {
    assert_multiproc_matches(TransportConfig::Tcp);
}

#[test]
fn four_process_udp_arq_run_matches_in_process_verdicts() {
    assert_multiproc_matches(TransportConfig::Udp);
}

#[test]
fn launch_rejects_configs_that_cannot_span_processes() {
    let model = edge_model();
    let views = random_views(2, 2, 6);
    let labels = vec![0usize, 1];
    let expect_config_err = |cfg: &HierarchyConfig, needle: &str| {
        let err = multiproc::launch(node_exe(), model.config(), &views, &labels, cfg).unwrap_err();
        assert!(
            matches!(&err, RuntimeError::Config { reason } if reason.contains(needle)),
            "expected {needle:?} rejection, got: {err}"
        );
    };
    expect_config_err(&cfg(TransportConfig::Channel), "socket transport");
    expect_config_err(
        &HierarchyConfig { deadlines: None, ..cfg(TransportConfig::Tcp) },
        "deadlines",
    );
    expect_config_err(
        &HierarchyConfig { elastic: Some(ElasticConfig::default()), ..cfg(TransportConfig::Tcp) },
        "elastic",
    );
    expect_config_err(
        &HierarchyConfig { failed_devices: vec![0], ..cfg(TransportConfig::Tcp) },
        "in-process only",
    );
}
