//! Streaming-engine tests: the open-loop arrival pump must account for
//! every arrival as exactly one typed outcome (classified / shed / timed
//! out — conservation), bound the admission queue at `queue_cap`, match
//! the closed loop verdict for verdict when unloaded, and survive
//! membership churn while samples are in flight.

use ddnn_core::{AggregationScheme, Ddnn, DdnnConfig, EdgeConfig, ExitThreshold};
use ddnn_runtime::{
    run_distributed_inference, ArrivalProcess, ChurnSchedule, ChurnTarget, DeadlineConfig,
    ElasticConfig, FaultPlan, HierarchyConfig, MemorySink, ObsConfig, ObsEvent, ReliabilityConfig,
    SampleOutcome, SimReport, StreamConfig,
};
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::Tensor;
use proptest::prelude::*;
use std::sync::Arc;

fn small_model() -> Ddnn {
    Ddnn::new(DdnnConfig {
        num_devices: 3,
        device_filters: 2,
        cloud_filters: [4, 8],
        ..DdnnConfig::default()
    })
}

fn random_views(n: usize, devices: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = rng_from_seed(seed);
    (0..devices).map(|_| Tensor::rand_uniform([n, 3, 32, 32], 0.0, 1.0, &mut rng)).collect()
}

fn counter(report: &SimReport, name: &str) -> u64 {
    report.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
}

/// Typed-outcome census: (classified, shed, timed out).
fn census(report: &SimReport) -> (usize, usize, usize) {
    let mut c = (0usize, 0usize, 0usize);
    for o in &report.outcomes {
        match o {
            SampleOutcome::Classified => c.0 += 1,
            SampleOutcome::Shed => c.1 += 1,
            SampleOutcome::TimedOut { .. } => c.2 += 1,
        }
    }
    c
}

/// The streaming engine's accounting contract, asserted after every run:
/// conservation across the typed outcomes, counters that agree with the
/// per-sample records, typed (evented) shedding only at a full admission
/// window, and shed samples excluded from latency and degradation.
fn assert_streaming_accounting(report: &SimReport, n: usize, queue_cap: usize, sink: &MemorySink) {
    let (classified, shed, timed_out) = census(report);
    assert_eq!(classified + shed + timed_out, n, "conservation: no sample unaccounted");
    assert_eq!(counter(report, "run.samples"), n as u64, "every arrival counted");
    assert_eq!(
        counter(report, "run.admitted"),
        (classified + timed_out) as u64,
        "admitted samples either classify or time out"
    );
    assert_eq!(counter(report, "run.shed"), shed as u64);
    assert_eq!(counter(report, "run.watchdog_timeouts"), timed_out as u64);

    // Shedding is never silent: one timeline event per shed sample, and
    // only ever at a full admission window (the queue-depth bound).
    let shed_events: Vec<usize> = sink
        .events()
        .into_iter()
        .filter_map(|(_, e)| match e {
            ObsEvent::SampleShed { inflight, .. } => Some(inflight),
            _ => None,
        })
        .collect();
    assert_eq!(shed_events.len(), shed, "one shed event per shed sample");
    for depth in shed_events {
        assert_eq!(depth, queue_cap, "samples shed only when the window is full");
    }

    for i in 0..n {
        match report.outcomes[i] {
            SampleOutcome::Shed => {
                assert_eq!(report.latencies_ms[i], 0.0, "a shed sample never waited");
                assert_eq!(report.predictions[i], usize::MAX);
                assert!(
                    !report.degraded_samples.contains(&(i as u64)),
                    "shedding is flow control, not degradation"
                );
            }
            SampleOutcome::Classified => {
                assert!(report.latencies_ms[i] > 0.0, "sample {i}: measured latency missing");
            }
            SampleOutcome::TimedOut { waited_ms } => {
                assert_eq!(report.latencies_ms[i], waited_ms as f64);
            }
        }
    }
}

fn stream_cfg(arrival: ArrivalProcess, queue_cap: usize, batch_max: usize) -> HierarchyConfig {
    HierarchyConfig {
        local_threshold: ExitThreshold::new(0.5),
        deadlines: Some(DeadlineConfig { watchdog_ms: 2000, ..DeadlineConfig::fast() }),
        stream: Some(StreamConfig { arrival, queue_cap, batch_max }),
        ..HierarchyConfig::default()
    }
}

proptest! {
    // The conservation law under arbitrary load shapes: any seeded
    // Poisson or fixed-rate arrival process, any admission window, any
    // batch width — every arrival resolves to exactly one typed outcome
    // and the queue never grows past its cap.
    #[test]
    fn streaming_conserves_every_arrival(
        n in 6usize..16,
        queue_cap in 1usize..6,
        batch_max in 1usize..5,
        rate in 100.0f64..4000.0,
        poisson in 0u8..2,
        seed in 0u64..1000,
    ) {
        let model = small_model();
        let views = random_views(n, 3, seed ^ 0xabcd);
        let labels = vec![0usize; n];
        let arrival = if poisson == 1 {
            ArrivalProcess::Poisson { rate_per_s: rate, seed }
        } else {
            ArrivalProcess::Fixed { rate_per_s: rate }
        };
        let sink = Arc::new(MemorySink::default());
        let cfg = HierarchyConfig {
            obs: ObsConfig { sink: Some(sink.clone()) },
            ..stream_cfg(arrival, queue_cap, batch_max)
        };
        let report = run_distributed_inference(&model.partition(), &views, &labels, &cfg)
            .expect("streaming run");
        assert_streaming_accounting(&report, n, queue_cap, &sink);
    }
}

#[test]
fn unloaded_streaming_matches_the_closed_loop_verdict_for_verdict() {
    // At an arrival rate the pipeline trivially sustains, with a window
    // wide enough that nothing sheds, streaming must classify every
    // sample to exactly the closed loop's prediction and exit — the pump
    // changes scheduling, never arithmetic.
    let model = small_model();
    let n = 8;
    let views = random_views(n, 3, 71);
    let labels = vec![0usize; n];
    let closed = run_distributed_inference(
        &model.partition(),
        &views,
        &labels,
        &HierarchyConfig { local_threshold: ExitThreshold::new(0.5), ..HierarchyConfig::default() },
    )
    .expect("closed-loop reference");
    let report = run_distributed_inference(
        &model.partition(),
        &views,
        &labels,
        &stream_cfg(ArrivalProcess::Fixed { rate_per_s: 200.0 }, n, 4),
    )
    .expect("streaming run");
    let (classified, shed, timed_out) = census(&report);
    assert_eq!((classified, shed, timed_out), (n, 0, 0), "unloaded: everything classifies");
    assert_eq!(report.predictions, closed.predictions);
    assert_eq!(report.exits, closed.exits);
    // Streaming latency is measured on the sub-millisecond clock, not the
    // truncated one: a local exit on an unloaded pipeline lands far under
    // a millisecond, which the u64 clock would have flattened to zero.
    for (i, &ms) in report.latencies_ms.iter().enumerate() {
        assert!(ms > 0.0, "sample {i}: zero measured latency");
        assert!(ms.fract() != 0.0, "sample {i}: latency {ms} looks truncated");
    }
}

#[test]
fn overload_sheds_typed_and_counted_never_silent() {
    // A one-slot admission window under a flood: almost everything must
    // shed, and every shed is a typed outcome + counter + timeline event.
    let model = small_model();
    let n = 12;
    let views = random_views(n, 3, 72);
    let labels = vec![0usize; n];
    let sink = Arc::new(MemorySink::default());
    let cfg = HierarchyConfig {
        obs: ObsConfig { sink: Some(sink.clone()) },
        ..stream_cfg(ArrivalProcess::Fixed { rate_per_s: 1e6 }, 1, 1)
    };
    let report =
        run_distributed_inference(&model.partition(), &views, &labels, &cfg).expect("flood run");
    let (_, shed, _) = census(&report);
    assert!(shed > 0, "a one-slot window under flood load must shed");
    assert_streaming_accounting(&report, n, 1, &sink);
}

#[test]
fn streaming_survives_churn_while_loaded() {
    // The acceptance chaos scenario: membership churn flapping devices,
    // the gateway and the edge tier while an open-loop stream keeps the
    // admission window loaded — on both wire formats. Conservation and
    // the queue bound must hold; churn may degrade or time samples out,
    // never lose them.
    //
    // Pacing matters for the liveness assertion at the bottom: churn
    // flags flip at arrival index, so arrivals must be spread wide enough
    // that up-windows outlast the pipeline and elastic detection
    // (~2 heartbeats), and the watchdog budget short enough that stalled
    // samples release their admission slots mid-stream. A flood-rate
    // stream with a budget longer than the whole run turns the scenario
    // into a wall-clock race where every slot can stall behind the first
    // crash and nothing ever classifies on a slow machine.
    let model = Ddnn::new(DdnnConfig {
        num_devices: 3,
        device_filters: 2,
        cloud_filters: [4, 8],
        edge: Some(EdgeConfig { filters: 4, agg: AggregationScheme::Concat }),
        ..DdnnConfig::default()
    });
    let n = 16;
    let views = random_views(n, 3, 73);
    let labels = vec![0usize; n];
    let targets =
        [ChurnTarget::Device(0), ChurnTarget::Gateway, ChurnTarget::Tier("edge".to_string())];
    for reliability in [ReliabilityConfig::off(), ReliabilityConfig::arq()] {
        let sink = Arc::new(MemorySink::default());
        let cfg = HierarchyConfig {
            local_threshold: ExitThreshold::new(0.5),
            edge_threshold: ExitThreshold::new(0.5),
            fault_plan: FaultPlan {
                seed: 97,
                churn: ChurnSchedule::flapping(97, n as u64, &targets, 6, 2),
                ..FaultPlan::none()
            },
            deadlines: Some(DeadlineConfig {
                aggregation_ms: 60,
                watchdog_ms: 250,
                max_retries: 1,
                suspect_after: 2,
            }),
            elastic: Some(ElasticConfig::fast()),
            reliability,
            stream: Some(StreamConfig {
                arrival: ArrivalProcess::Poisson { rate_per_s: 30.0, seed: 5 },
                queue_cap: 4,
                batch_max: 4,
            }),
            obs: ObsConfig { sink: Some(sink.clone()) },
            ..HierarchyConfig::default()
        };
        let report = run_distributed_inference(&model.partition(), &views, &labels, &cfg)
            .expect("churn-while-loaded run");
        assert_streaming_accounting(&report, n, 4, &sink);
        let (classified, _, _) = census(&report);
        assert!(classified > 0, "churn never blanks the whole stream");
    }
}

#[test]
fn streaming_without_deadlines_is_rejected() {
    let model = small_model();
    let views = random_views(2, 3, 74);
    let labels = vec![0usize; 2];
    let cfg = HierarchyConfig {
        stream: Some(StreamConfig {
            arrival: ArrivalProcess::Fixed { rate_per_s: 100.0 },
            queue_cap: 2,
            batch_max: 1,
        }),
        ..HierarchyConfig::default()
    };
    let err = run_distributed_inference(&model.partition(), &views, &labels, &cfg).unwrap_err();
    assert!(err.to_string().contains("deadlines"), "{err}");
}
