//! Property-based tests of the tensor substrate.

use ddnn_tensor::conv::{col2im, im2col, max_pool2d, Conv2dSpec};
use ddnn_tensor::{bits, Shape, Tensor};
use proptest::prelude::*;

fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..5, 1..4)
}

fn tensor_with_dims(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let len: usize = dims.iter().product();
    prop::collection::vec(-10.0f32..10.0, len)
        .prop_map(move |data| Tensor::from_vec(data, dims.clone()).expect("len matches"))
}

fn small_tensor() -> impl Strategy<Value = Tensor> {
    small_dims().prop_flat_map(tensor_with_dims)
}

proptest! {
    #[test]
    fn offset_unravel_roundtrip(dims in small_dims(), salt in 0usize..1000) {
        let shape = Shape::new(dims);
        if !shape.is_empty() {
            let off = salt % shape.len();
            let idx = shape.unravel(off).unwrap();
            prop_assert_eq!(shape.offset(&idx).unwrap(), off);
        }
    }

    #[test]
    fn reshape_preserves_data(t in small_tensor()) {
        let flat = t.reshape([t.len()]).unwrap();
        prop_assert_eq!(flat.data(), t.data());
        let back = flat.reshape(t.dims().to_vec()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn add_commutes_and_sub_inverts(dims in small_dims(), seed in 0u64..100) {
        let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
        let a = Tensor::rand_uniform(dims.clone(), -5.0, 5.0, &mut rng);
        let b = Tensor::rand_uniform(dims, -5.0, 5.0, &mut rng);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        let diff = a.add(&b).unwrap().sub(&b).unwrap();
        prop_assert!(diff.max_abs_diff(&a).unwrap() < 1e-4);
    }

    #[test]
    fn scale_is_linear(t in small_tensor(), k in -4.0f32..4.0) {
        let lhs = t.scale(k).sum();
        let rhs = t.sum() * k;
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + rhs.abs()));
    }

    #[test]
    fn transpose_is_involution(r in 1usize..6, c in 1usize..6, seed in 0u64..50) {
        let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
        let t = Tensor::rand_uniform([r, c], -1.0, 1.0, &mut rng);
        prop_assert_eq!(t.transpose().unwrap().transpose().unwrap(), t);
    }

    #[test]
    fn matmul_distributes_over_addition(m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..50) {
        // Integer-valued entries keep float arithmetic exact.
        let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
        let int = |rng: &mut rand::rngs::StdRng, d: [usize; 2]| {
            Tensor::rand_uniform(d, -3.0, 3.0, rng).map(|x| x.round())
        };
        let a = int(&mut rng, [m, k]);
        let b = int(&mut rng, [k, n]);
        let c = int(&mut rng, [k, n]);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn stack_then_index_recovers(tensors in prop::collection::vec(tensor_with_dims(vec![2, 3]), 1..5)) {
        let stacked = Tensor::stack(&tensors).unwrap();
        for (i, t) in tensors.iter().enumerate() {
            prop_assert_eq!(&stacked.index_axis0(i).unwrap(), t);
        }
    }

    #[test]
    fn concat_split_roundtrip(parts in 1usize..5, width in 1usize..4, rows in 1usize..4, seed in 0u64..50) {
        let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
        let pieces: Vec<Tensor> =
            (0..parts).map(|_| Tensor::rand_uniform([rows, width], -1.0, 1.0, &mut rng)).collect();
        let whole = Tensor::concat(&pieces, 1).unwrap();
        let back = whole.split(parts, 1).unwrap();
        prop_assert_eq!(back, pieces);
    }

    #[test]
    fn softmax_rows_is_a_distribution(rows in 1usize..5, cols in 2usize..6, seed in 0u64..50) {
        let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
        let t = Tensor::rand_uniform([rows, cols], -30.0, 30.0, &mut rng);
        let s = t.softmax_rows().unwrap();
        prop_assert!(s.all_finite());
        for i in 0..rows {
            let row = s.row(i).unwrap();
            prop_assert!((row.sum() - 1.0).abs() < 1e-5);
            prop_assert!(row.min().unwrap() >= 0.0);
            // argmax is preserved by softmax.
            prop_assert_eq!(row.argmax().unwrap(), t.row(i).unwrap().argmax().unwrap());
        }
    }

    #[test]
    fn bitpack_roundtrip_on_signs(dims in small_dims(), seed in 0u64..100) {
        let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
        let t = Tensor::rand_signs(dims.clone(), &mut rng);
        let packed = bits::pack_signs(&t);
        prop_assert_eq!(packed.len(), bits::packed_len(t.len()));
        let back = bits::unpack_signs(&packed, dims).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn f32_pack_roundtrip(data in prop::collection::vec(-1e6f32..1e6, 1..32)) {
        let n = data.len();
        let t = Tensor::from_vec(data, [n]).unwrap();
        let b = bits::pack_f32(&t);
        prop_assert_eq!(b.len(), 4 * n);
        prop_assert_eq!(bits::unpack_f32(&b, [n]).unwrap(), t);
    }

    #[test]
    fn im2col_col2im_adjoint(c in 1usize..3, h in 2usize..6, w in 2usize..6, seed in 0u64..30) {
        let spec = Conv2dSpec::paper_conv();
        let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
        let x = Tensor::rand_uniform([1, c, h, w], -1.0, 1.0, &mut rng);
        let cx = im2col(&x, &spec).unwrap();
        let y = Tensor::rand_uniform(cx.dims().to_vec(), -1.0, 1.0, &mut rng);
        let lhs = cx.dot(&y).unwrap();
        let rhs = x.dot(&col2im(&y, c, h, w, &spec).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn max_pool_output_bounded_by_input_max(seed in 0u64..100) {
        let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
        let x = Tensor::rand_uniform([1, 2, 6, 6], -5.0, 5.0, &mut rng);
        let out = max_pool2d(&x, &Conv2dSpec::paper_pool()).unwrap();
        prop_assert!(out.output.max().unwrap() <= x.max().unwrap());
        // Every output element exists somewhere in the input (or is from a
        // fully padded window, impossible with this geometry).
        for (o, &idx) in out.output.data().iter().zip(&out.argmax) {
            prop_assert!(idx != usize::MAX);
            prop_assert_eq!(*o, x.data()[idx]);
        }
    }

    #[test]
    fn bitmatrix_pack_agrees_with_pack_signs(rows in 1usize..5, cols in 1usize..80, seed in 0u64..50) {
        // The word-packed matrix layout and the wire byte layout must
        // agree element-for-element in row-major order, so a feature map
        // can move between them without a float round trip.
        use ddnn_tensor::bitmatrix::BitMatrix;
        let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
        let t = Tensor::rand_signs([rows, cols], &mut rng);
        let m = BitMatrix::pack(&t).unwrap();
        let wire = bits::pack_signs(&t);
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                let wire_bit = (wire[i / 8] >> (7 - i % 8)) & 1 == 1;
                prop_assert_eq!(m.get(r, c), wire_bit);
            }
        }
        prop_assert_eq!(m.unpack(), t);
    }

    #[test]
    fn xnor_gemm_matches_f32_gemm(m in 1usize..4, k in 1usize..80, n in 1usize..4, seed in 0u64..30) {
        use ddnn_tensor::bitmatrix::binary_matmul;
        let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
        let x = Tensor::rand_signs([m, k], &mut rng);
        let w = Tensor::rand_signs([n, k], &mut rng);
        prop_assert_eq!(
            binary_matmul(&x, &w).unwrap(),
            x.matmul(&w.transpose().unwrap()).unwrap()
        );
    }

    #[test]
    fn sum_axis_agrees_with_total(dims in prop::collection::vec(1usize..5, 2..4), seed in 0u64..50) {
        let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
        let t = Tensor::rand_uniform(dims.clone(), -2.0, 2.0, &mut rng);
        for axis in 0..dims.len() {
            let s = t.sum_axis(axis).unwrap();
            prop_assert!((s.sum() - t.sum()).abs() < 1e-3 * (1.0 + t.sum().abs()));
        }
    }
}
