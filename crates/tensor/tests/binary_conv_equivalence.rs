//! Property tests pinning the binary-convolution equivalence contract:
//! the fused plan ([`binary_conv2d`]), the explicit batched entry point
//! ([`binary_conv2d_batch`]) and the two-phase [`bit_im2col`] + masked
//! XNOR GEMM reference must all be **bit-identical** to the f32 sign-path
//! convolution — across odd geometries (patch widths off word boundaries,
//! padding/stride combinations), batch sizes 1..8, and every SIMD
//! dispatch tier the machine supports.
//!
//! Tiers are pinned with the thread-local [`simd::with_tier`] override
//! rather than `DDNN_SIMD`, so concurrently running tests cannot race on
//! process-global environment state.

use ddnn_tensor::bitmatrix::{binary_conv2d, binary_conv2d_batch, bit_im2col};
use ddnn_tensor::conv::{conv2d, Conv2dSpec};
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::{simd, BitMatrix, Tensor};
use proptest::prelude::*;
use rand::Rng;

/// The paper's strictly-positive sign binarization (`nn::binarize`).
fn binarize(t: &Tensor) -> Tensor {
    t.map(|x| if x > 0.0 { 1.0 } else { -1.0 })
}

fn random_signs(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = rng_from_seed(seed);
    Tensor::from_fn(dims.to_vec(), |_| if rng.gen::<f32>() > 0.5 { 1.0 } else { -1.0 })
}

/// Random float weights (not pre-binarized): the kernels must pack by
/// sign themselves, including the zero → −1 convention.
fn random_weights(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = rng_from_seed(seed ^ 0x5eed);
    Tensor::from_fn(dims.to_vec(), |_| rng.gen::<f32>() * 2.0 - 1.0)
}

/// The pre-fusion two-phase lowering, reconstructed from public API:
/// materialize the whole packed column matrix per sample, then run the
/// masked XNOR GEMM against the packed weights.
fn two_phase_reference(x: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Tensor {
    let (n, f) = (x.dims()[0], weight.dims()[0]);
    let kk: usize = weight.dims()[1..].iter().product();
    let (oh, ow) = spec.checked_output_size(x.dims()[2], x.dims()[3]).expect("valid geometry");
    let (patches, mask) = bit_im2col(x, spec).expect("bit_im2col");
    let w2 = weight.reshape([f, kk]).expect("weight reshape");
    let wbits = BitMatrix::pack(&w2).expect("weight pack");
    let mut out = Vec::with_capacity(n * f * oh * ow);
    for p in &patches {
        let per = wbits.xnor_matmul_masked(p, &mask).expect("masked gemm");
        out.extend_from_slice(per.data());
    }
    Tensor::from_vec(out, [n, f, oh, ow]).expect("assemble")
}

/// Asserts all binary paths equal the f32 sign path on every supported
/// tier; panics (failing the enclosing property case) on divergence.
fn check_all_paths(x: &Tensor, weight: &Tensor, spec: &Conv2dSpec) {
    let expect = conv2d(x, &binarize(weight), spec).expect("f32 conv");
    let reference = two_phase_reference(x, weight, spec);
    assert_eq!(&reference, &expect, "two-phase bit_im2col path diverged from f32");
    let n = x.dims()[0];
    let samples: Vec<Tensor> = (0..n)
        .map(|b| {
            let dims = &x.dims()[1..];
            let chw: usize = dims.iter().product();
            Tensor::from_vec(x.data()[b * chw..(b + 1) * chw].to_vec(), dims.to_vec())
                .expect("sample slice")
        })
        .collect();
    for tier in simd::supported_tiers() {
        let fused = simd::with_tier(tier, || binary_conv2d(x, weight, spec).expect("fused conv"));
        assert_eq!(&fused, &expect, "fused conv diverged from f32 on tier {}", tier.name());
        let batched = simd::with_tier(tier, || {
            binary_conv2d_batch(&samples, weight, spec).expect("batched conv")
        });
        assert_eq!(batched.len(), n);
        let pix: usize = expect.dims()[2] * expect.dims()[3];
        let f = expect.dims()[1];
        for (b, out) in batched.iter().enumerate() {
            assert_eq!(out.dims(), &[f, expect.dims()[2], expect.dims()[3]]);
            assert_eq!(
                out.data(),
                &expect.data()[b * f * pix..(b + 1) * f * pix],
                "batched sample {} diverged from f32 on tier {}",
                b,
                tier.name()
            );
        }
    }
}

proptest! {
    // Small geometries: kernel/stride/padding combinations with patch
    // widths `c*kh*kw` landing on and off `u64` word boundaries, batch
    // sizes 1..8. Each case sweeps every supported tier internally.
    // Geometries where the kernel overhangs the padded input are skipped.
    #[test]
    fn binary_conv_paths_agree(
        n in 1usize..=8,
        c in 1usize..=9,
        f in 1usize..=6,
        hw in 3usize..=10,
        kernel in 1usize..=3,
        stride in 1usize..=2,
        padding in 0usize..=2,
        seed in 0u64..1000,
    ) {
        let spec = Conv2dSpec::new(2 * kernel - 1, stride, padding); // 1, 3, 5
        if spec.checked_output_size(hw, hw).is_ok() {
            let x = random_signs(&[n, c, hw, hw], seed);
            let w = random_weights(&[f, c, spec.kernel_h, spec.kernel_w], seed);
            check_all_paths(&x, &w, &spec);
        }
    }

    // Channel counts straddling the 64-bit word boundary with a 1×1
    // kernel: `kk = c` exercises the tail-word masking exactly at, just
    // below and just above one word.
    #[test]
    fn binary_conv_tail_word_masking(
        c in 62usize..=66,
        n in 1usize..=3,
        seed in 0u64..200,
    ) {
        let spec = Conv2dSpec::new(1, 1, 0);
        let x = random_signs(&[n, c, 4, 4], seed);
        let w = random_weights(&[3, c, 1, 1], seed);
        check_all_paths(&x, &w, &spec);
    }

    // Inputs wider than one 64-bit word take the general (non-planar)
    // fallback inside the plan; it must stay equivalent too.
    #[test]
    fn binary_conv_wide_input_fallback(
        w in 63usize..=70,
        n in 1usize..=2,
        seed in 0u64..100,
    ) {
        let spec = Conv2dSpec::paper_conv();
        let x = random_signs(&[n, 2, 5, w], seed);
        let wt = random_weights(&[3, 2, 3, 3], seed);
        check_all_paths(&x, &wt, &spec);
    }
}

/// The paper's exact cloud-tier shape at batch 8 — the micro-batch drain
/// case the streaming engine produces — deterministically, on every tier.
#[test]
fn paper_shape_batch8_all_tiers() {
    let spec = Conv2dSpec::paper_conv();
    let x = random_signs(&[8, 24, 16, 16], 7);
    let w = random_weights(&[16, 24, 3, 3], 7);
    let expect = conv2d(&x, &binarize(&w), &spec).expect("f32 conv");
    for tier in simd::supported_tiers() {
        let got = simd::with_tier(tier, || binary_conv2d(&x, &w, &spec).expect("fused"));
        assert_eq!(got, expect, "tier {}", tier.name());
    }
}
