//! Quick profiling harness for the fused binary conv kernel: times the
//! paper-shape conv (1,24,16,16)x(16,24,3,3) and its batch-8 variant on
//! the active SIMD tier. Used to tune the kernel without rebuilding the
//! full bench binary.

use ddnn_tensor::conv::Conv2dSpec;
use ddnn_tensor::{bitmatrix, conv, Tensor};
use std::time::Instant;

fn random_signs(dims: &[usize], seed: u64) -> Tensor {
    let mut state = seed | 1;
    Tensor::from_fn(dims.to_vec(), |_| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        if (state >> 33) & 1 == 1 {
            1.0
        } else {
            -1.0
        }
    })
}

fn time_us(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let spec = Conv2dSpec { kernel_h: 3, kernel_w: 3, stride: 1, padding: 1 };
    let x1 = random_signs(&[1, 24, 16, 16], 7);
    let w = random_signs(&[16, 24, 3, 3], 11);
    let samples: Vec<Tensor> = (0..8).map(|i| random_signs(&[24, 16, 16], 20 + i)).collect();
    let singles: Vec<Tensor> = (0..8).map(|i| random_signs(&[1, 24, 16, 16], 20 + i)).collect();

    let f32_t = time_us(200, || {
        conv::conv2d(&x1, &w, &spec).unwrap();
    });
    let xnor_t = time_us(1000, || {
        bitmatrix::binary_conv2d(&x1, &w, &spec).unwrap();
    });
    let per_t = time_us(200, || {
        for s in &singles {
            bitmatrix::binary_conv2d(s, &w, &spec).unwrap();
        }
    });
    let batch_t = time_us(200, || {
        bitmatrix::binary_conv2d_batch(&samples, &w, &spec).unwrap();
    });
    println!("tier {}", ddnn_tensor::simd::active_tier().name());
    println!("f32   conv1: {f32_t:9.2} us");
    println!("xnor  conv1: {xnor_t:9.2} us   speedup {:5.2}x", f32_t / xnor_t);
    println!("xnor per8  : {per_t:9.2} us");
    println!("xnor batch8: {batch_t:9.2} us   batched-over-per {:5.2}x", per_t / batch_t);
}
