//! Bit-packing of binarized tensors.
//!
//! DDNN end devices transmit the *sign* of each activation — 1 bit per
//! element — to the cloud aggregator (paper §III-E, Eq. 1 counts `f·o/8`
//! bytes for `f` filters of `o` bits each). This module packs a ±1 tensor
//! into that wire representation and unpacks it back.
//!
//! The sign rule here — strictly positive → `1`, zero/negative → `0` —
//! is the same one the compute-side [`crate::bitmatrix`] kernels use for
//! their LSB-first `u64` words, so wire bytes and XNOR–popcount operands
//! agree bit for bit (property-tested in `tests/properties.rs`). The
//! wire format is MSB-first per *byte* and never SIMD-dispatched: packets
//! must be byte-identical across hosts regardless of the
//! [`crate::simd`] tier the compute kernels picked.

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use crate::tensor::Tensor;
use bytes::{BufMut, Bytes, BytesMut};

/// Number of bytes needed to pack `n` sign bits.
pub fn packed_len(n: usize) -> usize {
    n.div_ceil(8)
}

/// Packs the signs of a tensor into bits: strictly positive values become
/// `1`, everything else (including zero and negatives) becomes `0`.
///
/// Bits are stored most-significant-first within each byte; the final byte
/// is zero-padded. The element order is the tensor's row-major order, so the
/// shape must be carried out-of-band (as the wire protocol does).
///
/// ```
/// use ddnn_tensor::{Tensor, bits};
/// let t = Tensor::from_vec(vec![1.0, -1.0, 1.0, 1.0], [4])?;
/// let packed = bits::pack_signs(&t);
/// assert_eq!(packed.len(), 1);
/// assert_eq!(packed[0], 0b1011_0000);
/// # Ok::<(), ddnn_tensor::TensorError>(())
/// ```
pub fn pack_signs(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(packed_len(t.len()));
    let mut byte = 0u8;
    let mut nbits = 0;
    for &x in t.data() {
        byte <<= 1;
        if x > 0.0 {
            byte |= 1;
        }
        nbits += 1;
        if nbits == 8 {
            buf.put_u8(byte);
            byte = 0;
            nbits = 0;
        }
    }
    if nbits > 0 {
        buf.put_u8(byte << (8 - nbits));
    }
    buf.freeze()
}

/// Unpacks sign bits back into a ±1 tensor of the given shape.
///
/// A `1` bit becomes `+1.0` and a `0` bit becomes `-1.0`, matching the
/// binary-activation codomain used by the network.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if `bytes` is too short for the
/// shape.
pub fn unpack_signs(bytes: &[u8], shape: impl Into<Shape>) -> Result<Tensor> {
    let shape = shape.into();
    let n = shape.len();
    if bytes.len() < packed_len(n) {
        return Err(TensorError::LengthMismatch { expected: packed_len(n), actual: bytes.len() });
    }
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        let byte = bytes[i / 8];
        let bit = (byte >> (7 - (i % 8))) & 1;
        data.push(if bit == 1 { 1.0 } else { -1.0 });
    }
    Tensor::from_vec(data, shape)
}

/// Serializes an `f32` tensor as little-endian bytes (4 bytes per element) —
/// the format used for the per-class score vector each device sends to its
/// local aggregator (the `4·|C|` term of Eq. 1).
pub fn pack_f32(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 * t.len());
    for &x in t.data() {
        buf.put_f32_le(x);
    }
    buf.freeze()
}

/// Deserializes little-endian `f32` bytes into a tensor of the given shape.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if `bytes` is shorter than
/// `4 * shape.len()`.
pub fn unpack_f32(bytes: &[u8], shape: impl Into<Shape>) -> Result<Tensor> {
    let shape = shape.into();
    let n = shape.len();
    if bytes.len() < 4 * n {
        return Err(TensorError::LengthMismatch { expected: 4 * n, actual: bytes.len() });
    }
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        let mut b = [0u8; 4];
        b.copy_from_slice(&bytes[4 * i..4 * i + 4]);
        data.push(f32::from_le_bytes(b));
    }
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_len_rounds_up() {
        assert_eq!(packed_len(0), 0);
        assert_eq!(packed_len(1), 1);
        assert_eq!(packed_len(8), 1);
        assert_eq!(packed_len(9), 2);
        assert_eq!(packed_len(1024), 128);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let t = Tensor::from_fn([3, 5], |i| if i % 3 == 0 { 1.0 } else { -1.0 });
        let packed = pack_signs(&t);
        assert_eq!(packed.len(), 2);
        let back = unpack_signs(&packed, [3, 5]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn zero_packs_as_negative() {
        let t = Tensor::from_vec(vec![0.0, 1.0], [2]).unwrap();
        let back = unpack_signs(&pack_signs(&t), [2]).unwrap();
        assert_eq!(back.data(), &[-1.0, 1.0]);
    }

    #[test]
    fn bit_order_is_msb_first() {
        let t = Tensor::from_vec(vec![1.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0, 1.0], [8]).unwrap();
        assert_eq!(pack_signs(&t)[0], 0b1000_0001);
    }

    #[test]
    fn unpack_rejects_short_buffer() {
        assert!(unpack_signs(&[0u8], [16]).is_err());
    }

    #[test]
    fn paper_feature_map_is_128_bytes() {
        // f=4 filters of 16x16 binary activations -> 4*256/8 = 128 bytes,
        // the second term of Eq. 1 for the paper's largest device model.
        let t = Tensor::ones([4, 16, 16]);
        assert_eq!(pack_signs(&t).len(), 128);
    }

    #[test]
    fn f32_round_trip() {
        let t = Tensor::from_vec(vec![1.5, -2.25, 0.0], [3]).unwrap();
        let b = pack_f32(&t);
        assert_eq!(b.len(), 12);
        let back = unpack_f32(&b, [3]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn class_vector_is_12_bytes() {
        // |C| = 3 classes at 4 bytes each -> the first term of Eq. 1.
        let scores = Tensor::zeros([3]);
        assert_eq!(pack_f32(&scores).len(), 12);
    }

    #[test]
    fn f32_unpack_rejects_short_buffer() {
        assert!(unpack_f32(&[0u8; 8], [3]).is_err());
    }
}
