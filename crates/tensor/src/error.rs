//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// Error produced by fallible tensor operations.
///
/// All variants carry enough context to diagnose the failing call without a
/// debugger: the offending shapes or indices are embedded in the error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data
    /// length supplied to a constructor or `reshape`.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Short name of the operation that failed, e.g. `"add"`.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor's shape.
        shape: Vec<usize>,
    },
    /// An axis argument exceeded the tensor's rank.
    InvalidAxis {
        /// The requested axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the supplied tensor.
        actual: usize,
    },
    /// The operation is undefined on an empty tensor.
    Empty {
        /// Short name of the operation that failed.
        op: &'static str,
    },
    /// The operation's input contains a NaN or infinity where only finite
    /// values are meaningful (e.g. a probability vector fed to an entropy
    /// computation).
    NonFinite {
        /// Short name of the operation that failed.
        op: &'static str,
    },
    /// A sliding-window geometry is degenerate: the kernel does not fit in
    /// the padded input, the kernel is empty, or the stride is zero.
    InvalidGeometry {
        /// `(kernel_h, kernel_w)` of the offending spec.
        kernel: (usize, usize),
        /// `(h, w)` of the input.
        input: (usize, usize),
        /// Stride of the offending spec.
        stride: usize,
        /// Padding of the offending spec.
        padding: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "length mismatch: shape implies {expected} elements but {actual} were provided"
            ),
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} is invalid for tensor of rank {rank}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected rank {expected}, got rank {actual}")
            }
            TensorError::Empty { op } => {
                write!(f, "operation `{op}` is undefined on an empty tensor")
            }
            TensorError::NonFinite { op } => {
                write!(f, "operation `{op}` received a non-finite (NaN or infinite) input")
            }
            TensorError::InvalidGeometry { kernel, input, stride, padding } => write!(
                f,
                "degenerate sliding-window geometry: {}x{} kernel (stride {stride}, padding \
                 {padding}) does not fit {}x{} input",
                kernel.0, kernel.1, input.0, input.1
            ),
        }
    }
}

impl Error for TensorError {}

/// Convenience alias for results of fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch { expected: 6, actual: 4 };
        assert_eq!(e.to_string(), "length mismatch: shape implies 6 elements but 4 were provided");
    }

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch { lhs: vec![2, 3], rhs: vec![3, 2], op: "add" };
        assert!(e.to_string().contains("add"));
        assert!(e.to_string().contains("[2, 3]"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = TensorError::IndexOutOfBounds { index: vec![5], shape: vec![3] };
        assert!(e.to_string().contains("[5]"));
    }

    #[test]
    fn display_invalid_axis() {
        let e = TensorError::InvalidAxis { axis: 3, rank: 2 };
        assert!(e.to_string().contains("axis 3"));
    }

    #[test]
    fn display_invalid_geometry() {
        let e =
            TensorError::InvalidGeometry { kernel: (5, 5), input: (2, 2), stride: 1, padding: 0 };
        assert!(e.to_string().contains("5x5 kernel"));
        assert!(e.to_string().contains("2x2 input"));
    }

    #[test]
    fn display_non_finite() {
        let e = TensorError::NonFinite { op: "normalized_entropy" };
        assert!(e.to_string().contains("non-finite"));
        assert!(e.to_string().contains("normalized_entropy"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
