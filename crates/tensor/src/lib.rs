//! # ddnn-tensor
//!
//! Dense `f32` tensor library underpinning the DDNN-RS reproduction of
//! *Distributed Deep Neural Networks over the Cloud, the Edge and End
//! Devices* (Teerapittayanon, McDanel, Kung — ICDCS 2017).
//!
//! The crate provides exactly the numeric substrate that the paper's
//! networks require, implemented from scratch:
//!
//! * [`Tensor`] — contiguous row-major storage with shape bookkeeping,
//!   elementwise arithmetic, reductions and batch slicing;
//! * [`Tensor::matmul`] and friends — the linear algebra used by fully
//!   connected layers;
//! * [`conv`] — `im2col`-based 2-D convolution and max pooling with exact
//!   adjoint backward passes (verified against finite differences);
//! * [`bits`] — 1-bit packing of binarized activations, the wire format the
//!   paper's communication-cost model (Eq. 1) counts;
//! * [`bitmatrix`] — `u64`-word packed ±1 matrices with XNOR–popcount
//!   GEMM and bit-packed `im2col`, the binary inference fast path;
//! * [`parallel`] — deterministic scoped-thread data parallelism
//!   (`DDNN_THREADS`) used by the f32 and binary kernels alike;
//! * [`simd`] — runtime SIMD dispatch tiers (`DDNN_SIMD`) selecting the
//!   scalar/SSE2/AVX2/AVX-512 clones of the bit-packed kernels;
//! * [`rng`] — deterministic, seedable random tensor generation.
//!
//! ## Example
//!
//! ```
//! use ddnn_tensor::{Tensor, conv::{conv2d, Conv2dSpec}};
//!
//! # fn main() -> Result<(), ddnn_tensor::TensorError> {
//! // A 32x32 RGB image batch, convolved with 4 binary 3x3 filters exactly
//! // as the paper's ConvP block does.
//! let images = Tensor::zeros([1, 3, 32, 32]);
//! let filters = Tensor::ones([4, 3, 3, 3]);
//! let features = conv2d(&images, &filters, &Conv2dSpec::paper_conv())?;
//! assert_eq!(features.dims(), &[1, 4, 32, 32]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bitmatrix;
pub mod bits;
pub mod conv;
mod error;
mod ops;
pub mod parallel;
pub mod rng;
mod shape;
pub mod simd;
mod tensor;

pub use bitmatrix::BitMatrix;
pub use error::{Result, TensorError};
pub use shape::Shape;
pub use simd::SimdTier;
pub use tensor::Tensor;
