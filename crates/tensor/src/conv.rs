//! Convolution and pooling kernels for NCHW tensors.
//!
//! Convolutions are computed by lowering to matrix multiplication via
//! `im2col`/`col2im`, the standard approach for CPU inference and training.
//! Pooling is computed directly, recording argmax indices so the backward
//! pass can scatter gradients.

use crate::error::{Result, TensorError};
use crate::parallel;
use crate::tensor::Tensor;

/// Geometry of a 2-D sliding-window operation (convolution or pooling).
///
/// The paper's fused binary blocks use a 3×3 convolution with stride 1 and
/// padding 1, and a 3×3 pool with stride 2 and padding 1; both are instances
/// of this struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical and horizontal stride.
    pub stride: usize,
    /// Zero padding applied symmetrically on all sides.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a square-kernel spec.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        Conv2dSpec { kernel_h: kernel, kernel_w: kernel, stride, padding }
    }

    /// The paper's convolution geometry: 3×3, stride 1, padding 1.
    pub fn paper_conv() -> Self {
        Conv2dSpec::new(3, 1, 1)
    }

    /// The paper's pooling geometry: 3×3, stride 2, padding 1.
    pub fn paper_pool() -> Self {
        Conv2dSpec::new(3, 2, 1)
    }

    /// Output spatial size for an `(h, w)` input.
    ///
    /// Assumes the geometry is valid (the kernel fits in the padded input
    /// and the stride is non-zero). Every fallible kernel entry point —
    /// the f32 conv/pool/im2col family below, the bit-packed
    /// [`crate::bitmatrix::bit_im2col`], and the fused
    /// [`crate::bitmatrix::BinaryConvPlan`] — goes through
    /// [`Conv2dSpec::checked_output_size`] instead, which rejects
    /// degenerate geometries rather than silently clamping them; this raw
    /// variant is only for contexts where the geometry was already
    /// validated (or is a compile-time paper constant).
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding).saturating_sub(self.kernel_h) / self.stride.max(1) + 1;
        let ow = (w + 2 * self.padding).saturating_sub(self.kernel_w) / self.stride.max(1) + 1;
        (oh, ow)
    }

    /// Output spatial size for an `(h, w)` input, rejecting degenerate
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the kernel is larger
    /// than the padded input (which [`Conv2dSpec::output_size`] would
    /// silently clamp to a bogus 1×N output), if the kernel is empty, or
    /// if the stride is zero.
    pub fn checked_output_size(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let valid = self.stride > 0
            && self.kernel_h > 0
            && self.kernel_w > 0
            && h + 2 * self.padding >= self.kernel_h
            && w + 2 * self.padding >= self.kernel_w;
        if !valid {
            return Err(TensorError::InvalidGeometry {
                kernel: (self.kernel_h, self.kernel_w),
                input: (h, w),
                stride: self.stride,
                padding: self.padding,
            });
        }
        Ok(self.output_size(h, w))
    }
}

pub(crate) fn check_nchw(t: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if t.rank() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: t.rank() });
    }
    let d = t.dims();
    if d.contains(&0) {
        return Err(TensorError::Empty { op });
    }
    Ok((d[0], d[1], d[2], d[3]))
}

/// Lowers an NCHW batch into column matrices for convolution.
///
/// Returns a tensor of shape `(n, c*kh*kw, oh*ow)`: one column matrix per
/// batch element, with each column holding the receptive field of one output
/// pixel. Out-of-bounds taps read as zero (zero padding).
///
/// # Errors
///
/// Returns an error if `input` is not a non-empty rank-4 tensor or the
/// geometry is degenerate.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "im2col")?;
    let (oh, ow) = spec.checked_output_size(h, w)?;
    let rows = c * spec.kernel_h * spec.kernel_w;
    let cols = oh * ow;
    let mut out = vec![0.0f32; n * rows * cols];
    let data = input.data();
    // Batch elements are independent: fan them out across the pool. Each
    // worker writes only its own batch chunk, so the result is identical
    // for any thread count.
    parallel::par_item_chunks_mut(&mut out, rows * cols, |b0, chunk| {
        for (bi, bchunk) in chunk.chunks_mut(rows * cols).enumerate() {
            let in_base = (b0 + bi) * c * h * w;
            let mut r = 0;
            for ch in 0..c {
                for ky in 0..spec.kernel_h {
                    for kx in 0..spec.kernel_w {
                        let row_off = r * cols;
                        for oy in 0..oh {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let src_row = in_base + ch * h * w + iy as usize * w;
                            for ox in 0..ow {
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                bchunk[row_off + oy * ow + ox] = data[src_row + ix as usize];
                            }
                        }
                        r += 1;
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, [n, rows, cols])
}

/// Inverse lowering: accumulates a `(n, c*kh*kw, oh*ow)` column tensor back
/// into an NCHW gradient of shape `(n, c, h, w)`.
///
/// Overlapping receptive fields *accumulate*, which is exactly the adjoint of
/// [`im2col`] — required for correct convolution input gradients.
///
/// # Errors
///
/// Returns an error if `cols` is not rank 3 or its shape is inconsistent
/// with `(c, h, w)` under `spec`.
pub fn col2im(cols: &Tensor, c: usize, h: usize, w: usize, spec: &Conv2dSpec) -> Result<Tensor> {
    if cols.rank() != 3 {
        return Err(TensorError::RankMismatch { expected: 3, actual: cols.rank() });
    }
    let (oh, ow) = spec.checked_output_size(h, w)?;
    let rows = c * spec.kernel_h * spec.kernel_w;
    let n = cols.dims()[0];
    if cols.dims()[1] != rows || cols.dims()[2] != oh * ow {
        return Err(TensorError::ShapeMismatch {
            lhs: cols.dims().to_vec(),
            rhs: vec![n, rows, oh * ow],
            op: "col2im",
        });
    }
    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols.data();
    // Scatter-accumulation stays within one batch element, so batches can
    // run on separate workers without racing; per-element accumulation
    // order is the serial loop's, keeping results thread-count-invariant.
    parallel::par_item_chunks_mut(&mut out, c * h * w, |b0, chunk| {
        for (bi, bchunk) in chunk.chunks_mut(c * h * w).enumerate() {
            let in_base = (b0 + bi) * rows * (oh * ow);
            let mut r = 0;
            for ch in 0..c {
                for ky in 0..spec.kernel_h {
                    for kx in 0..spec.kernel_w {
                        let row_off = in_base + r * oh * ow;
                        for oy in 0..oh {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let dst_row = ch * h * w + iy as usize * w;
                            for ox in 0..ow {
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                bchunk[dst_row + ix as usize] += data[row_off + oy * ow + ox];
                            }
                        }
                        r += 1;
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, [n, c, h, w])
}

/// Forward 2-D convolution: input `(n, c, h, w)`, weights `(f, c, kh, kw)`,
/// producing `(n, f, oh, ow)`.
///
/// # Errors
///
/// Returns an error for non-rank-4 operands, mismatched channel counts or
/// degenerate geometry.
pub fn conv2d(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "conv2d")?;
    let (f, wc, kh, kw) = check_nchw(weight, "conv2d")?;
    if wc != c || kh != spec.kernel_h || kw != spec.kernel_w {
        return Err(TensorError::ShapeMismatch {
            lhs: input.dims().to_vec(),
            rhs: weight.dims().to_vec(),
            op: "conv2d",
        });
    }
    let (oh, ow) = spec.checked_output_size(h, w)?;
    let rows = c * kh * kw;
    let pixels = oh * ow;
    let cols = im2col(input, spec)?;
    let wmat = weight.reshape([f, rows])?;
    let wdata = wmat.data();
    let cdata = cols.data();
    let mut out = vec![0.0f32; n * f * pixels];
    // Fan the batch out across the pool; each element is an independent
    // `(f, rows) x (rows, pixels)` product. A single-element batch instead
    // parallelises inside the GEMM (across output rows), so per-sample
    // inference still uses every core.
    parallel::par_item_chunks_mut(&mut out, f * pixels, |b0, chunk| {
        for (bi, res) in chunk.chunks_mut(f * pixels).enumerate() {
            let b = b0 + bi;
            let colmat = &cdata[b * rows * pixels..(b + 1) * rows * pixels];
            crate::ops::gemm_auto(wdata, colmat, f, rows, pixels, res);
        }
    });
    Tensor::from_vec(out, [n, f, oh, ow])
}

/// Gradients of [`conv2d`] given upstream `grad_out` of shape
/// `(n, f, oh, ow)`.
///
/// Returns `(grad_input, grad_weight)` with the shapes of `input` and
/// `weight` respectively.
///
/// # Errors
///
/// Returns an error for inconsistent shapes.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &Conv2dSpec,
) -> Result<(Tensor, Tensor)> {
    let (n, c, h, w) = check_nchw(input, "conv2d_backward")?;
    let (f, _, kh, kw) = check_nchw(weight, "conv2d_backward")?;
    let (gn, gf, goh, gow) = check_nchw(grad_out, "conv2d_backward")?;
    let (oh, ow) = spec.checked_output_size(h, w)?;
    if gn != n || gf != f || goh != oh || gow != ow {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_out.dims().to_vec(),
            rhs: vec![n, f, oh, ow],
            op: "conv2d_backward",
        });
    }
    let rows = c * kh * kw;
    let cols = im2col(input, spec)?;
    let wmat = weight.reshape([f, rows])?;
    let wmat_t = wmat.transpose()?;
    let mut grad_w = Tensor::zeros([f, rows]);
    let mut grad_cols = Vec::with_capacity(n * rows * oh * ow);
    for b in 0..n {
        let gmat = grad_out.index_axis0(b)?.reshape([f, oh * ow])?;
        let colmat = cols.index_axis0(b)?; // (rows, oh*ow)
                                           // dW += dY * X_col^T
        let gw = gmat.matmul(&colmat.transpose()?)?;
        grad_w.add_assign(&gw)?;
        // dX_col = W^T * dY
        let gc = wmat_t.matmul(&gmat)?;
        grad_cols.extend_from_slice(gc.data());
    }
    let grad_cols = Tensor::from_vec(grad_cols, [n, rows, oh * ow])?;
    let grad_input = col2im(&grad_cols, c, h, w, spec)?;
    let grad_weight = grad_w.reshape([f, c, kh, kw])?;
    Ok((grad_input, grad_weight))
}

/// Result of a max-pooling forward pass: the pooled output plus the flat
/// input index each output element was taken from (for the backward pass).
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled tensor of shape `(n, c, oh, ow)`.
    pub output: Tensor,
    /// For each output element, the flat index into the input it selected.
    pub argmax: Vec<usize>,
}

/// Forward max pooling over an NCHW tensor.
///
/// Padding positions are treated as `-inf` (never selected) unless an entire
/// window falls in padding, in which case the output is `0.0` and the argmax
/// sentinel `usize::MAX` marks "no source" (no gradient flows back).
///
/// # Errors
///
/// Returns an error if `input` is not a non-empty rank-4 tensor or the
/// pooling geometry is degenerate.
pub fn max_pool2d(input: &Tensor, spec: &Conv2dSpec) -> Result<MaxPoolOutput> {
    let (n, c, h, w) = check_nchw(input, "max_pool2d")?;
    let (oh, ow) = spec.checked_output_size(h, w)?;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut argmax = vec![usize::MAX; n * c * oh * ow];
    let data = input.data();
    for b in 0..n {
        for ch in 0..c {
            let in_plane = (b * c + ch) * h * w;
            let out_plane = (b * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = usize::MAX;
                    for ky in 0..spec.kernel_h {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..spec.kernel_w {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = in_plane + iy as usize * w + ix as usize;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = out_plane + oy * ow + ox;
                    if best_idx == usize::MAX {
                        out[o] = 0.0;
                    } else {
                        out[o] = best;
                        argmax[o] = best_idx;
                    }
                }
            }
        }
    }
    Ok(MaxPoolOutput { output: Tensor::from_vec(out, [n, c, oh, ow])?, argmax })
}

/// Backward max pooling: scatters `grad_out` to the argmax positions recorded
/// by [`max_pool2d`].
///
/// # Errors
///
/// Returns an error if `grad_out` length differs from the recorded argmax
/// table.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_shape: &[usize],
) -> Result<Tensor> {
    if grad_out.len() != argmax.len() {
        return Err(TensorError::LengthMismatch { expected: argmax.len(), actual: grad_out.len() });
    }
    let mut grad_in = Tensor::zeros(input_shape.to_vec());
    let gi = grad_in.data_mut();
    for (g, &idx) in grad_out.data().iter().zip(argmax) {
        if idx != usize::MAX {
            gi[idx] += g;
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_paper_geometries() {
        assert_eq!(Conv2dSpec::paper_conv().output_size(32, 32), (32, 32));
        assert_eq!(Conv2dSpec::paper_pool().output_size(32, 32), (16, 16));
        assert_eq!(Conv2dSpec::paper_pool().output_size(16, 16), (8, 8));
        assert_eq!(Conv2dSpec::paper_pool().output_size(8, 8), (4, 4));
    }

    #[test]
    fn oversized_kernel_is_rejected_not_clamped() {
        // Regression: `output_size` used `saturating_sub`, so a 5x5 kernel
        // on an unpadded 2x2 input silently produced a bogus 1x1 output
        // instead of failing. Degenerate geometry must now error.
        let spec = Conv2dSpec::new(5, 1, 0);
        assert!(matches!(
            spec.checked_output_size(2, 2),
            Err(TensorError::InvalidGeometry { kernel: (5, 5), input: (2, 2), .. })
        ));
        let input = Tensor::ones([1, 1, 2, 2]);
        let weight = Tensor::ones([1, 1, 5, 5]);
        assert!(conv2d(&input, &weight, &spec).is_err());
        assert!(im2col(&input, &spec).is_err());
        assert!(max_pool2d(&input, &spec).is_err());
        // Padding that makes the kernel fit again is accepted.
        let padded = Conv2dSpec::new(5, 1, 2);
        assert_eq!(padded.checked_output_size(2, 2).unwrap(), (2, 2));
    }

    #[test]
    fn zero_stride_is_rejected() {
        let spec = Conv2dSpec::new(3, 0, 1);
        assert!(spec.checked_output_size(8, 8).is_err());
        assert!(max_pool2d(&Tensor::ones([1, 1, 8, 8]), &spec).is_err());
    }

    #[test]
    fn checked_output_size_matches_unchecked_when_valid() {
        for spec in [Conv2dSpec::paper_conv(), Conv2dSpec::paper_pool(), Conv2dSpec::new(1, 1, 0)] {
            assert_eq!(spec.checked_output_size(16, 16).unwrap(), spec.output_size(16, 16));
        }
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: im2col is the identity layout.
        let input = Tensor::from_fn([1, 2, 2, 2], |i| i as f32);
        let spec = Conv2dSpec::new(1, 1, 0);
        let cols = im2col(&input, &spec).unwrap();
        assert_eq!(cols.dims(), &[1, 2, 4]);
        assert_eq!(cols.data(), input.data());
    }

    #[test]
    fn im2col_respects_padding() {
        let input = Tensor::ones([1, 1, 2, 2]);
        let spec = Conv2dSpec::new(3, 1, 1);
        let cols = im2col(&input, &spec).unwrap();
        // Center tap (kernel position 1,1 = row 4) sees every input pixel.
        let row4 = &cols.data()[4 * 4..5 * 4];
        assert_eq!(row4, &[1.0, 1.0, 1.0, 1.0]);
        // Corner tap (0,0) only sees the input where the window fits.
        let row0 = &cols.data()[0..4];
        assert_eq!(row0, &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn conv2d_known_values() {
        // 2x2 input, 3x3 all-ones kernel, pad 1: each output = sum of the
        // 3x3 neighbourhood.
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [1, 1, 2, 2]).unwrap();
        let weight = Tensor::ones([1, 1, 3, 3]);
        let out = conv2d(&input, &weight, &Conv2dSpec::paper_conv()).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[10.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn conv2d_multi_channel_sums_channels() {
        let input = Tensor::ones([1, 3, 4, 4]);
        let weight = Tensor::ones([2, 3, 3, 3]);
        let out = conv2d(&input, &weight, &Conv2dSpec::paper_conv()).unwrap();
        assert_eq!(out.dims(), &[1, 2, 4, 4]);
        // Interior output pixel: 3 channels * 9 taps = 27.
        assert_eq!(out.get(&[0, 0, 1, 1]).unwrap(), 27.0);
        // Corner: 3 channels * 4 in-bounds taps = 12.
        assert_eq!(out.get(&[0, 1, 0, 0]).unwrap(), 12.0);
    }

    #[test]
    fn conv2d_rejects_channel_mismatch() {
        let input = Tensor::ones([1, 2, 4, 4]);
        let weight = Tensor::ones([1, 3, 3, 3]);
        assert!(conv2d(&input, &weight, &Conv2dSpec::paper_conv()).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y — the adjoint
        // property that makes conv gradients correct.
        let spec = Conv2dSpec::paper_conv();
        let x = Tensor::from_fn([1, 2, 3, 3], |i| (i as f32 * 0.37).sin());
        let cx = im2col(&x, &spec).unwrap();
        let y = Tensor::from_fn(cx.dims().to_vec(), |i| (i as f32 * 0.11).cos());
        let lhs = cx.dot(&y).unwrap();
        let cy = col2im(&y, 2, 3, 3, &spec).unwrap();
        let rhs = x.dot(&cy).unwrap();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn conv2d_backward_finite_difference() {
        let spec = Conv2dSpec::paper_conv();
        let input = Tensor::from_fn([1, 1, 3, 3], |i| (i as f32 * 0.3).sin());
        let weight = Tensor::from_fn([1, 1, 3, 3], |i| (i as f32 * 0.7).cos() * 0.5);
        let out = conv2d(&input, &weight, &spec).unwrap();
        // Loss = sum of outputs -> upstream gradient of ones.
        let gout = Tensor::ones(out.dims().to_vec());
        let (gin, gw) = conv2d_backward(&input, &weight, &gout, &spec).unwrap();
        let eps = 1e-3;
        // Check a few weight coordinates by central differences.
        for &idx in &[0usize, 4, 8] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let fp = conv2d(&input, &wp, &spec).unwrap().sum();
            let fm = conv2d(&input, &wm, &spec).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - gw.data()[idx]).abs() < 1e-2, "dW[{idx}]: {num} vs {}", gw.data()[idx]);
        }
        // And a few input coordinates.
        for &idx in &[0usize, 4, 7] {
            let mut xp = input.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = input.clone();
            xm.data_mut()[idx] -= eps;
            let fp = conv2d(&xp, &weight, &spec).unwrap().sum();
            let fm = conv2d(&xm, &weight, &spec).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - gin.data()[idx]).abs() < 1e-2,
                "dX[{idx}]: {num} vs {}",
                gin.data()[idx]
            );
        }
    }

    #[test]
    fn max_pool_known_values() {
        let input = Tensor::from_vec((1..=16).map(|x| x as f32).collect(), [1, 1, 4, 4]).unwrap();
        let res = max_pool2d(&input, &Conv2dSpec::paper_pool()).unwrap();
        assert_eq!(res.output.dims(), &[1, 1, 2, 2]);
        // Windows centred per stride-2 with pad 1 over a 4x4 of 1..16.
        assert_eq!(res.output.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn max_pool_backward_scatters_to_argmax() {
        let input = Tensor::from_vec((1..=16).map(|x| x as f32).collect(), [1, 1, 4, 4]).unwrap();
        let spec = Conv2dSpec::paper_pool();
        let res = max_pool2d(&input, &spec).unwrap();
        let gout = Tensor::ones([1, 1, 2, 2]);
        let gin = max_pool2d_backward(&gout, &res.argmax, input.dims()).unwrap();
        // Gradient lands exactly on the max positions (values 6, 8, 14, 16).
        assert_eq!(gin.data()[5], 1.0);
        assert_eq!(gin.data()[7], 1.0);
        assert_eq!(gin.data()[13], 1.0);
        assert_eq!(gin.data()[15], 1.0);
        assert_eq!(gin.sum(), 4.0);
    }

    #[test]
    fn max_pool_preserves_max_bound() {
        let input = Tensor::from_fn([1, 2, 8, 8], |i| ((i * 37) % 101) as f32 / 101.0);
        let res = max_pool2d(&input, &Conv2dSpec::paper_pool()).unwrap();
        assert!(res.output.max().unwrap() <= input.max().unwrap());
    }

    #[test]
    fn pool_rejects_bad_rank() {
        let input = Tensor::ones([4, 4]);
        assert!(max_pool2d(&input, &Conv2dSpec::paper_pool()).is_err());
    }
}
