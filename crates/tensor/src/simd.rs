//! Runtime SIMD dispatch tiers for the bit-packed kernels.
//!
//! The XNOR–popcount kernels in [`crate::bitmatrix`] have one generic
//! (`#[inline(always)]`) body each, recompiled under several
//! `#[target_feature]` sets. This module decides **which clone runs**:
//!
//! | tier     | packing              | popcount                         |
//! |----------|----------------------|----------------------------------|
//! | `scalar` | portable bit loop    | portable bit dance               |
//! | `sse2`   | SSE2 `cmpps`/`movmsk`| hardware `popcnt`                |
//! | `avx2`   | 8-wide `vcmpps`      | `vpshufb` nibble-LUT vectors     |
//! | `avx512` | 8-wide `vcmpps`      | `vpopcntq` (AVX-512 VPOPCNTDQ)   |
//!
//! Every tier computes the same exact integers — tiers differ only in
//! instruction selection, never in results — so tier choice is a pure
//! performance knob and the equivalence tests can sweep all of them.
//!
//! Resolution order for [`active_tier`]:
//!
//! 1. a thread-local override installed by [`with_tier`] (used by tests,
//!    which must not race on process-global environment variables);
//! 2. the `DDNN_SIMD` environment variable (`scalar`|`sse2`|`avx2`|
//!    `avx512`, re-read on every call so benches can sweep tiers in one
//!    process);
//! 3. the best tier the CPU supports ([`detected_tier`], probed once).
//!
//! Both overrides are clamped down to [`detected_tier`] — asking for
//! `avx512` on an AVX2 machine silently runs the AVX2 clone rather than
//! faulting on illegal instructions.
//!
//! Kernels resolve the tier **once per public entry point** on the calling
//! thread and pass it down into their worker closures by value; pool
//! workers (fresh threads per [`crate::parallel`] call) would otherwise
//! miss the caller's thread-local override.

use std::cell::Cell;

/// A SIMD capability level for the bit-packed kernels, ordered from
/// portable to widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdTier {
    /// Portable Rust only: no explicit intrinsics, no `popcnt` feature.
    Scalar,
    /// The pre-AVX x86-64 path: SSE2 sign packing plus hardware `popcnt`.
    Sse2,
    /// AVX2: 8-wide packing compares, vectorized nibble-LUT popcounts.
    Avx2,
    /// AVX-512 with VPOPCNTDQ: native 8×64-bit vector popcount.
    Avx512,
}

impl SimdTier {
    /// All tiers, narrowest first (the order `supported_tiers` reports).
    pub const ALL: [SimdTier; 4] =
        [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2, SimdTier::Avx512];

    /// The tier's lowercase name, as accepted by `DDNN_SIMD`.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }

    /// Parses a `DDNN_SIMD` value (case-insensitive). Unknown strings map
    /// to `None` (callers fall back to detection rather than erroring: a
    /// typo in an env var must not take down inference).
    pub fn parse(s: &str) -> Option<SimdTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdTier::Scalar),
            "sse2" => Some(SimdTier::Sse2),
            "avx2" => Some(SimdTier::Avx2),
            "avx512" => Some(SimdTier::Avx512),
            _ => None,
        }
    }
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The widest tier this CPU can execute, probed once per process.
///
/// `Sse2` requires the `popcnt` instruction (not part of the x86-64
/// baseline); `Avx2` additionally requires AVX2; `Avx512` requires
/// AVX-512F plus the VPOPCNTDQ extension. Non-x86-64 targets report
/// `Scalar`.
pub fn detected_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<SimdTier> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
                && std::arch::is_x86_feature_detected!("popcnt")
            {
                SimdTier::Avx512
            } else if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("popcnt")
            {
                SimdTier::Avx2
            } else if std::arch::is_x86_feature_detected!("popcnt") {
                SimdTier::Sse2
            } else {
                SimdTier::Scalar
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    SimdTier::Scalar
}

/// Every tier the current CPU supports, narrowest first — the sweep axis
/// for benches and equivalence tests.
pub fn supported_tiers() -> Vec<SimdTier> {
    let best = detected_tier();
    SimdTier::ALL.iter().copied().filter(|&t| t <= best).collect()
}

thread_local! {
    /// Tier forced by [`with_tier`] on this thread, if any.
    static TIER_OVERRIDE: Cell<Option<SimdTier>> = const { Cell::new(None) };
}

/// The tier the bit-packed kernels should dispatch to right now:
/// thread-local override, else `DDNN_SIMD`, else [`detected_tier`] —
/// always clamped to what the CPU supports.
pub fn active_tier() -> SimdTier {
    let want = TIER_OVERRIDE
        .with(Cell::get)
        .or_else(|| std::env::var("DDNN_SIMD").ok().as_deref().and_then(SimdTier::parse))
        .unwrap_or_else(detected_tier);
    want.min(detected_tier())
}

/// Runs `f` with the kernels pinned to `tier` (clamped to hardware
/// support) on the **current thread**.
///
/// This is the race-free way for tests to sweep tiers: unlike setting
/// `DDNN_SIMD`, a thread-local override cannot leak into concurrently
/// running tests. Kernel entry points resolve the tier before fanning out,
/// so the override covers their pool workers too. Restores the previous
/// override on exit (including unwind).
pub fn with_tier<T>(tier: SimdTier, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<SimdTier>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TIER_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(TIER_OVERRIDE.with(|c| c.replace(Some(tier.min(detected_tier())))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered_and_named() {
        assert!(SimdTier::Scalar < SimdTier::Sse2);
        assert!(SimdTier::Sse2 < SimdTier::Avx2);
        assert!(SimdTier::Avx2 < SimdTier::Avx512);
        for t in SimdTier::ALL {
            assert_eq!(SimdTier::parse(t.name()), Some(t));
            assert_eq!(SimdTier::parse(&t.name().to_uppercase()), Some(t));
        }
        assert_eq!(SimdTier::parse("neon"), None);
        assert_eq!(SimdTier::parse(""), None);
    }

    #[test]
    fn supported_tiers_start_at_scalar_and_end_at_detected() {
        let tiers = supported_tiers();
        assert_eq!(tiers.first(), Some(&SimdTier::Scalar));
        assert_eq!(tiers.last(), Some(&detected_tier()));
        assert!(tiers.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn with_tier_overrides_and_restores() {
        let before = active_tier();
        with_tier(SimdTier::Scalar, || {
            assert_eq!(active_tier(), SimdTier::Scalar);
            // Nested overrides stack.
            with_tier(detected_tier(), || assert_eq!(active_tier(), detected_tier()));
            assert_eq!(active_tier(), SimdTier::Scalar);
        });
        assert_eq!(active_tier(), before);
    }

    #[test]
    fn with_tier_clamps_to_hardware() {
        with_tier(SimdTier::Avx512, || assert!(active_tier() <= detected_tier()));
    }
}
