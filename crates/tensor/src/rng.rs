//! Deterministic random tensor generation.
//!
//! Every stochastic component of DDNN-RS (weight init, data synthesis,
//! shuffling) draws from a seeded [`rand::rngs::StdRng`] so that experiments
//! reproduce bit-for-bit given a seed.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal sample using the Box–Muller transform.
///
/// We implement this directly rather than pulling in `rand_distr`; the
/// quality is equivalent for our purposes (weight init, noise injection).
pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

impl Tensor {
    /// Creates a tensor with i.i.d. `N(0, std²)` entries.
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| sample_standard_normal(rng) * std).collect();
        Tensor::from_vec(data, shape).expect("generated data matches shape length")
    }

    /// Creates a tensor with i.i.d. `Uniform(lo, hi)` entries.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
        assert!(lo <= hi, "uniform bounds must satisfy lo <= hi");
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| rng.gen_range(lo..=hi)).collect();
        Tensor::from_vec(data, shape).expect("generated data matches shape length")
    }

    /// Creates a ±1 tensor with i.i.d. fair-coin entries (a random binarized
    /// activation pattern; useful for tests and synthetic workloads).
    pub fn rand_signs(shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let data = (0..shape.len()).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
        Tensor::from_vec(data, shape).expect("generated data matches shape length")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        let ta = Tensor::randn([100], 1.0, &mut a);
        let tb = Tensor::randn([100], 1.0, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let ta = Tensor::randn([100], 1.0, &mut rng_from_seed(1));
        let tb = Tensor::randn([100], 1.0, &mut rng_from_seed(2));
        assert_ne!(ta, tb);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = rng_from_seed(7);
        let t = Tensor::randn([10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|x| x * x).mean() - mean * mean;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
        assert!(t.all_finite());
    }

    #[test]
    fn randn_respects_std() {
        let mut rng = rng_from_seed(8);
        let t = Tensor::randn([10_000], 0.1, &mut rng);
        let var = t.map(|x| x * x).mean();
        assert!((var - 0.01).abs() < 0.005, "var={var}");
    }

    #[test]
    fn uniform_within_bounds() {
        let mut rng = rng_from_seed(9);
        let t = Tensor::rand_uniform([1000], -0.5, 0.5, &mut rng);
        assert!(t.max().unwrap() <= 0.5);
        assert!(t.min().unwrap() >= -0.5);
    }

    #[test]
    fn signs_are_plus_minus_one() {
        let mut rng = rng_from_seed(10);
        let t = Tensor::rand_signs([1000], &mut rng);
        assert!(t.data().iter().all(|&x| x == 1.0 || x == -1.0));
        // Roughly balanced.
        assert!(t.mean().abs() < 0.15);
    }
}
