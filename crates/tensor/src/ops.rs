//! Linear algebra and structural operations on [`Tensor`].
//!
//! These free-standing building blocks (matmul, transpose, axis reductions,
//! softmax, concatenation, batch slicing) are what the `ddnn-nn` layer
//! library is written in terms of.

use crate::error::{Result, TensorError};
use crate::parallel;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Minimum multiply–accumulate count before a GEMM fans out across the
/// worker pool; below this the scoped-thread setup costs more than it saves.
const PAR_FLOP_THRESHOLD: usize = 1 << 16;

/// Row-major `(m,k) x (k,n)` product accumulated into `out` (zeroed by the
/// caller, length `m*n`), serial.
///
/// ikj loop order: the inner loop walks both `b` and `out` rows
/// contiguously, which the compiler auto-vectorises. There is deliberately
/// no `a == 0.0` skip: `0.0 * NaN` is NaN, not zero, so skipping would
/// silently erase NaN/Inf contributions from `b` and mask poisoned
/// activations instead of propagating them (IEEE semantics).
pub(crate) fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// [`gemm`] that row-partitions the output across the worker pool when the
/// product is large enough to amortise thread startup.
///
/// Each output row is produced by exactly one worker running the serial
/// kernel's instruction sequence, so the result is bit-identical for any
/// thread count.
pub(crate) fn gemm_auto(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    if m * k * n >= PAR_FLOP_THRESHOLD && parallel::num_threads() > 1 {
        parallel::par_item_chunks_mut(out, n, |r0, chunk| {
            let mrows = chunk.len() / n;
            gemm(&a[r0 * k..(r0 + mrows) * k], b, mrows, k, n, chunk);
        });
    } else {
        gemm(a, b, m, k, n, out);
    }
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `(m,k) x (k,n) -> (m,n)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2,
    /// and [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.rank() });
        }
        if other.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: other.rank() });
        }
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: other.dims().to_vec(),
                op: "matmul",
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        gemm_auto(a, b, m, k, n, &mut out);
        Tensor::from_vec(out, [m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.rank() });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, [n, m])
    }

    /// Sums along `axis`, removing that axis from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= rank`.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        let out_shape = self.shape().without_axis(axis)?;
        let dims = self.dims();
        let axis_len = dims[axis];
        // outer = product of dims before `axis`, inner = product after.
        let outer: usize = dims[..axis].iter().product();
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out = vec![0.0f32; outer * inner];
        for o in 0..outer {
            for a in 0..axis_len {
                let base = (o * axis_len + a) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] += self.data()[base + i];
                }
            }
        }
        Tensor::from_vec(out, out_shape)
    }

    /// Mean along `axis`, removing that axis from the shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= rank`.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        let n = self.shape().dim(axis)? as f32;
        let mut t = self.sum_axis(axis)?;
        if n > 0.0 {
            t.scale_in_place(1.0 / n);
        }
        Ok(t)
    }

    /// Row-wise softmax of a rank-2 tensor `(batch, classes)`.
    ///
    /// Numerically stabilised by subtracting the row maximum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn softmax_rows(&self) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.rank() });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = self.data().to_vec();
        for i in 0..m {
            let row = &mut out[i * n..(i + 1) * n];
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - mx).exp();
                sum += *x;
            }
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Softmax of a rank-1 tensor (a single probability vector).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 1.
    pub fn softmax(&self) -> Result<Tensor> {
        if self.rank() != 1 {
            return Err(TensorError::RankMismatch { expected: 1, actual: self.rank() });
        }
        let n = self.len();
        self.reshape([1, n])?.softmax_rows()?.reshape([n])
    }

    /// Per-row argmax of a rank-2 tensor `(batch, classes)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless rank 2, or
    /// [`TensorError::Empty`] if rows have zero width.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.rank() });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        if n == 0 {
            return Err(TensorError::Empty { op: "argmax_rows" });
        }
        let mut out = Vec::with_capacity(m);
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless rank 2, or
    /// [`TensorError::IndexOutOfBounds`] for an invalid row.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.rank() });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        if i >= m {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.dims().to_vec(),
            });
        }
        Tensor::from_vec(self.data()[i * n..(i + 1) * n].to_vec(), [n])
    }

    /// Extracts the `i`-th slice along axis 0 (e.g. one sample of a batch),
    /// dropping that axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 tensors or
    /// [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn index_axis0(&self, i: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0 });
        }
        let n0 = self.dims()[0];
        if i >= n0 {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.dims().to_vec(),
            });
        }
        let rest: usize = self.dims()[1..].iter().product();
        let data = self.data()[i * rest..(i + 1) * rest].to_vec();
        Tensor::from_vec(data, self.dims()[1..].to_vec())
    }

    /// Selects the given indices along axis 0, producing a new batch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for any invalid index or
    /// [`TensorError::RankMismatch`] for rank-0 tensors.
    pub fn select_axis0(&self, indices: &[usize]) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0 });
        }
        let n0 = self.dims()[0];
        let rest: usize = self.dims()[1..].iter().product();
        let mut data = Vec::with_capacity(indices.len() * rest);
        for &i in indices {
            if i >= n0 {
                return Err(TensorError::IndexOutOfBounds {
                    index: vec![i],
                    shape: self.dims().to_vec(),
                });
            }
            data.extend_from_slice(&self.data()[i * rest..(i + 1) * rest]);
        }
        let mut dims = self.dims().to_vec();
        dims[0] = indices.len();
        Tensor::from_vec(data, dims)
    }

    /// Stacks same-shaped tensors along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty input list or
    /// [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn stack(tensors: &[Tensor]) -> Result<Tensor> {
        let first = tensors.first().ok_or(TensorError::Empty { op: "stack" })?;
        let mut data = Vec::with_capacity(tensors.len() * first.len());
        for t in tensors {
            if t.shape() != first.shape() {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.dims().to_vec(),
                    rhs: t.dims().to_vec(),
                    op: "stack",
                });
            }
            data.extend_from_slice(t.data());
        }
        let mut dims = vec![tensors.len()];
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, dims)
    }

    /// Concatenates tensors along an existing axis.
    ///
    /// All shapes must agree on every other axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] for an empty list,
    /// [`TensorError::InvalidAxis`] for a bad axis, or
    /// [`TensorError::ShapeMismatch`] if non-`axis` extents differ.
    pub fn concat(tensors: &[Tensor], axis: usize) -> Result<Tensor> {
        let first = tensors.first().ok_or(TensorError::Empty { op: "concat" })?;
        let rank = first.rank();
        if axis >= rank {
            return Err(TensorError::InvalidAxis { axis, rank });
        }
        let mut axis_total = 0;
        for t in tensors {
            if t.rank() != rank {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.dims().to_vec(),
                    rhs: t.dims().to_vec(),
                    op: "concat",
                });
            }
            for d in 0..rank {
                if d != axis && t.dims()[d] != first.dims()[d] {
                    return Err(TensorError::ShapeMismatch {
                        lhs: first.dims().to_vec(),
                        rhs: t.dims().to_vec(),
                        op: "concat",
                    });
                }
            }
            axis_total += t.dims()[axis];
        }
        let outer: usize = first.dims()[..axis].iter().product();
        let inner: usize = first.dims()[axis + 1..].iter().product();
        let mut dims = first.dims().to_vec();
        dims[axis] = axis_total;
        let mut data = Vec::with_capacity(outer * axis_total * inner);
        for o in 0..outer {
            for t in tensors {
                let a = t.dims()[axis];
                let chunk = a * inner;
                data.extend_from_slice(&t.data()[o * chunk..(o + 1) * chunk]);
            }
        }
        Tensor::from_vec(data, dims)
    }

    /// Splits a tensor into equal-width chunks along `axis` — the inverse of
    /// [`Tensor::concat`] with equal parts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] for a bad axis or
    /// [`TensorError::ShapeMismatch`] if the extent does not divide evenly.
    pub fn split(&self, parts: usize, axis: usize) -> Result<Vec<Tensor>> {
        if axis >= self.rank() {
            return Err(TensorError::InvalidAxis { axis, rank: self.rank() });
        }
        let extent = self.dims()[axis];
        if parts == 0 || !extent.is_multiple_of(parts) {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: vec![parts],
                op: "split",
            });
        }
        let width = extent / parts;
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let mut dims = self.dims().to_vec();
        dims[axis] = width;
        let mut out = Vec::with_capacity(parts);
        for p in 0..parts {
            let mut data = Vec::with_capacity(outer * width * inner);
            for o in 0..outer {
                let start = (o * extent + p * width) * inner;
                data.extend_from_slice(&self.data()[start..start + width * inner]);
            }
            out.push(Tensor::from_vec(data, Shape::new(dims.clone()))?);
        }
        Ok(out)
    }

    /// Adds a rank-1 bias to every row of a rank-2 tensor, in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if widths differ or ranks are
    /// not `(2, 1)`.
    #[allow(clippy::needless_range_loop)] // index math mirrors the row/col structure
    pub fn add_row_broadcast(&mut self, bias: &Tensor) -> Result<()> {
        if self.rank() != 2 || bias.rank() != 1 || self.dims()[1] != bias.dims()[0] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.dims().to_vec(),
                rhs: bias.dims().to_vec(),
                op: "add_row_broadcast",
            });
        }
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let b = bias.data().to_vec();
        for i in 0..m {
            for j in 0..n {
                self.data_mut()[i * n + j] += b[j];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), [r, c]).unwrap()
    }

    #[test]
    fn matmul_known_values() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = t2(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], 3, 2);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let id = t2(&[1.0, 0.0, 0.0, 1.0], 2, 2);
        assert_eq!(a.matmul(&id).unwrap(), a);
        assert_eq!(id.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_propagates_nan_through_zero_lhs() {
        // Regression: the old kernel skipped `a == 0.0` entries, so a NaN
        // (or Inf) in the corresponding rhs row vanished from the product.
        // IEEE says 0.0 * NaN = NaN and 0.0 * Inf = NaN; a poisoned
        // activation must surface, not disappear.
        let a = t2(&[0.0, 1.0], 1, 2);
        let b = t2(&[f32::NAN, 2.0, 3.0, 4.0], 2, 2);
        let c = a.matmul(&b).unwrap();
        assert!(c.data()[0].is_nan(), "0.0 * NaN must poison the output");
        assert_eq!(c.data()[1], 4.0);
        let binf = t2(&[f32::INFINITY, 2.0, 3.0, 4.0], 2, 2);
        assert!(a.matmul(&binf).unwrap().data()[0].is_nan());
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Large enough to cross the parallel threshold; every element must
        // be bit-identical to the serial kernel.
        let m = 64;
        let k = 48;
        let n = 32;
        let a = Tensor::from_fn([m, k], |i| ((i * 37) % 101) as f32 / 13.0 - 3.0);
        let b = Tensor::from_fn([k, n], |i| ((i * 53) % 97) as f32 / 11.0 - 4.0);
        let par = a.matmul(&b).unwrap();
        let mut serial = vec![0.0f32; m * n];
        gemm(a.data(), b.data(), m, k, n, &mut serial);
        assert_eq!(par.data(), &serial[..]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t2(&[1.0, 2.0], 1, 2);
        let b = t2(&[1.0, 2.0], 1, 2);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros([2]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let at = a.transpose().unwrap();
        assert_eq!(at.dims(), &[3, 2]);
        assert_eq!(at.get(&[2, 1]).unwrap(), 6.0);
        assert_eq!(at.transpose().unwrap(), a);
    }

    #[test]
    fn sum_axis_all_axes() {
        let t = Tensor::from_fn([2, 3], |i| i as f32); // [[0,1,2],[3,4,5]]
        assert_eq!(t.sum_axis(0).unwrap().data(), &[3.0, 5.0, 7.0]);
        assert_eq!(t.sum_axis(1).unwrap().data(), &[3.0, 12.0]);
        assert!(t.sum_axis(2).is_err());
    }

    #[test]
    fn mean_axis() {
        let t = Tensor::from_fn([2, 2], |i| i as f32);
        assert_eq!(t.mean_axis(0).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn sum_axis_rank3_middle() {
        let t = Tensor::from_fn([2, 2, 2], |i| i as f32);
        let s = t.sum_axis(1).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        // [[0+2,1+3],[4+6,5+7]]
        assert_eq!(s.data(), &[2.0, 4.0, 10.0, 12.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = t2(&[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], 2, 3);
        let s = t.softmax_rows().unwrap();
        for i in 0..2 {
            let row_sum: f32 = s.row(i).unwrap().sum();
            assert!((row_sum - 1.0).abs() < 1e-6);
        }
        assert!(s.all_finite(), "softmax must be stable for large logits");
        // Uniform logits -> uniform probabilities.
        assert!((s.get(&[1, 0]).unwrap() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_rank1() {
        let t = Tensor::from_vec(vec![0.0, 0.0], [2]).unwrap();
        let s = t.softmax().unwrap();
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows() {
        let t = t2(&[1.0, 3.0, 2.0, 9.0, 0.0, -1.0], 2, 3);
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn row_and_index_axis0() {
        let t = Tensor::from_fn([2, 3], |i| i as f32);
        assert_eq!(t.row(1).unwrap().data(), &[3.0, 4.0, 5.0]);
        assert!(t.row(2).is_err());
        let t3 = Tensor::from_fn([2, 2, 2], |i| i as f32);
        let s = t3.index_axis0(1).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn select_axis0_gathers() {
        let t = Tensor::from_fn([3, 2], |i| i as f32);
        let s = t.select_axis0(&[2, 0]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert!(t.select_axis0(&[3]).is_err());
    }

    #[test]
    fn stack_adds_leading_axis() {
        let a = Tensor::ones([2]);
        let b = Tensor::zeros([2]);
        let s = Tensor::stack(&[a, b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 1.0, 0.0, 0.0]);
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = t2(&[1.0, 2.0], 1, 2);
        let b = t2(&[3.0, 4.0], 1, 2);
        let c0 = Tensor::concat(&[a.clone(), b.clone()], 0).unwrap();
        assert_eq!(c0.dims(), &[2, 2]);
        assert_eq!(c0.data(), &[1.0, 2.0, 3.0, 4.0]);
        let c1 = Tensor::concat(&[a, b], 1).unwrap();
        assert_eq!(c1.dims(), &[1, 4]);
        assert_eq!(c1.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concat_channel_axis_of_nchw() {
        // Two (1,1,2,2) maps concatenated on channels -> (1,2,2,2).
        let a = Tensor::from_fn([1, 1, 2, 2], |i| i as f32);
        let b = Tensor::from_fn([1, 1, 2, 2], |i| 10.0 + i as f32);
        let c = Tensor::concat(&[a, b], 1).unwrap();
        assert_eq!(c.dims(), &[1, 2, 2, 2]);
        assert_eq!(c.data(), &[0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn split_inverts_concat() {
        let a = Tensor::from_fn([2, 4], |i| i as f32);
        let parts = a.split(2, 1).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].data(), &[0.0, 1.0, 4.0, 5.0]);
        assert_eq!(parts[1].data(), &[2.0, 3.0, 6.0, 7.0]);
        let back = Tensor::concat(&parts, 1).unwrap();
        assert_eq!(back, a);
        assert!(a.split(3, 1).is_err());
        assert!(a.split(0, 1).is_err());
    }

    #[test]
    fn add_row_broadcast() {
        let mut t = Tensor::zeros([2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).unwrap();
        t.add_row_broadcast(&b).unwrap();
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let bad = Tensor::zeros([2]);
        assert!(t.add_row_broadcast(&bad).is_err());
    }
}
