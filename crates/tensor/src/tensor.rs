//! The dense row-major `f32` tensor type.

use crate::error::{Result, TensorError};
use crate::shape::Shape;
use std::fmt;

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// This is the single numeric container used throughout DDNN-RS: network
/// activations, parameters, gradients and images are all `Tensor`s. The
/// representation is deliberately simple — a `Vec<f32>` plus a [`Shape`] —
/// which keeps every operation cache-friendly and easy to verify.
///
/// ```
/// use ddnn_tensor::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2])?;
/// assert_eq!(t.get(&[1, 0])?, 3.0);
/// let doubled = t.scale(2.0);
/// assert_eq!(doubled.data(), &[2.0, 4.0, 6.0, 8.0]);
/// # Ok::<(), ddnn_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the number of elements the shape implies.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor { data: vec![value; shape.len()], shape }
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], shape: Shape::scalar() }
    }

    /// Creates a tensor whose element at flat offset `i` is `f(i)`.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(&mut f).collect();
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its raw data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy with a new shape holding the same number of elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.len() != self.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: self.len() });
        }
        Ok(Tensor { data: self.data.clone(), shape })
    }

    /// Reshapes in place without copying data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ.
    pub fn reshape_in_place(&mut self, shape: impl Into<Shape>) -> Result<()> {
        let shape = shape.into();
        if shape.len() != self.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: self.len() });
        }
        self.shape = shape;
        Ok(())
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.check_same_shape(other, "zip")?;
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { data, shape: self.shape.clone() })
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "add")?;
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "sub")?;
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "mul")?;
        self.zip(other, |a, b| a * b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "add_assign")?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Adds `alpha * other` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`, producing a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        self.map_in_place(|x| x * alpha);
    }

    /// Adds `alpha` to every element, producing a new tensor.
    pub fn shift(&self, alpha: f32) -> Tensor {
        self.map(|x| x + alpha)
    }

    /// Sets all elements to zero, preserving the allocation.
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements.
    ///
    /// Returns `0.0` for an empty tensor (so statistics over empty batches
    /// are well-defined rather than NaN).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty tensor.
    pub fn max(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |m| m.max(x))))
            .ok_or(TensorError::Empty { op: "max" })
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty tensor.
    pub fn min(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| Some(acc.map_or(x, |m| m.min(x))))
            .ok_or(TensorError::Empty { op: "min" })
    }

    /// Flat index of the maximum element (first occurrence on ties).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty tensor.
    pub fn argmax(&self) -> Result<usize> {
        if self.data.is_empty() {
            return Err(TensorError::Empty { op: "argmax" });
        }
        let mut best = 0;
        for i in 1..self.data.len() {
            if self.data[i] > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Dot product of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other, "dot")?;
        Ok(self.data.iter().zip(&other.data).map(|(&a, &b)| a * b).sum())
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Whether every element is finite (neither NaN nor infinite).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference between two same-shaped tensors.
    ///
    /// Useful for approximate-equality assertions in tests.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        self.check_same_shape(other, "max_abs_diff")?;
        Ok(self.data.iter().zip(&other.data).map(|(&a, &b)| (a - b).abs()).fold(0.0f32, f32::max))
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.dims().to_vec(),
                rhs: other.shape.dims().to_vec(),
                op,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, ... {} elements]", &self.data[..8], self.len())
        }
    }
}

impl FromIterator<f32> for Tensor {
    /// Collects an iterator into a rank-1 tensor.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        let shape = Shape::new(vec![data.len()]);
        Tensor { data, shape }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], [3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]).is_ok());
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros([2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones([2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full([3], 2.5).sum(), 7.5);
        assert_eq!(Tensor::scalar(5.0).len(), 1);
        let t = Tensor::from_fn([4], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros([2, 3]);
        t.set(&[1, 2], 7.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 7.0);
        assert_eq!(t.data()[5], 7.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], [2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 6.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-2.0, -2.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 8.0]);
        assert_eq!(a.dot(&b).unwrap(), 11.0);
    }

    #[test]
    fn arithmetic_rejects_shape_mismatch() {
        let a = Tensor::zeros([2]);
        let b = Tensor::zeros([3]);
        assert!(a.add(&b).is_err());
        assert!(a.dot(&b).is_err());
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 3.0], [2]).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a.data(), &[3.0, 4.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[4.0, 5.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max().unwrap(), 3.0);
        assert_eq!(t.min().unwrap(), -2.0);
        assert_eq!(t.argmax().unwrap(), 2);
        assert_eq!(t.norm_sq(), 14.0);
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0], [3]).unwrap();
        assert_eq!(t.argmax().unwrap(), 1);
    }

    #[test]
    fn empty_reductions_error() {
        let t = Tensor::zeros([0]);
        assert!(t.max().is_err());
        assert!(t.min().is_err());
        assert!(t.argmax().is_err());
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn reshape() {
        let t = Tensor::from_fn([6], |i| i as f32);
        let r = t.reshape([2, 3]).unwrap();
        assert_eq!(r.get(&[1, 0]).unwrap(), 3.0);
        assert!(t.reshape([4]).is_err());
        let mut t = t;
        t.reshape_in_place([3, 2]).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
    }

    #[test]
    fn map_and_scale() {
        let t = Tensor::from_vec(vec![1.0, -1.0], [2]).unwrap();
        assert_eq!(t.map(f32::abs).data(), &[1.0, 1.0]);
        assert_eq!(t.scale(3.0).data(), &[3.0, -3.0]);
        assert_eq!(t.shift(1.0).data(), &[2.0, 0.0]);
        let mut t = t;
        t.scale_in_place(-2.0);
        assert_eq!(t.data(), &[-2.0, 2.0]);
        t.fill(9.0);
        assert_eq!(t.data(), &[9.0, 9.0]);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        let mut t = Tensor::ones([2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
        t.data_mut()[0] = f32::INFINITY;
        assert!(!t.all_finite());
    }

    #[test]
    fn max_abs_diff() {
        let a = Tensor::from_vec(vec![1.0, 2.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![1.5, 1.0], [2]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
    }

    #[test]
    fn from_iterator_collects_rank1() {
        let t: Tensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(t.dims(), &[4]);
    }

    #[test]
    fn display_truncates_large() {
        let t = Tensor::zeros([100]);
        let s = t.to_string();
        assert!(s.contains("100 elements"));
        let small = Tensor::zeros([2]);
        assert!(small.to_string().contains("[0.0, 0.0]"));
    }

    #[test]
    fn tensor_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tensor>();
    }
}
