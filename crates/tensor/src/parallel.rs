//! Scoped-thread data parallelism for CPU kernels.
//!
//! All heavy kernels in this crate (and the layers built on top of it) fan
//! work out through the helpers here. The design contract is **bit-exact
//! determinism**: every output element is computed by exactly one worker
//! using the same per-element instruction sequence as the serial loop, so
//! results are identical for any thread count — `DDNN_THREADS=1` and
//! `DDNN_THREADS=4` must produce the same bytes.
//!
//! Threads are created per call with [`std::thread::scope`]; there is no
//! long-lived pool. A thread-local flag marks pool workers so kernels that
//! are *called from inside* a parallel region run serially instead of
//! oversubscribing the machine with nested spawns.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    /// True while the current thread is a pool worker (prevents nesting).
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard marking the current thread as a pool worker.
struct PoolGuard {
    prev: bool,
}

impl PoolGuard {
    fn enter() -> Self {
        PoolGuard { prev: IN_POOL.replace(true) }
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        IN_POOL.set(self.prev);
    }
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Number of worker threads data-parallel kernels may use.
///
/// Honours the `DDNN_THREADS` environment variable (clamped to `1..=256`
/// and re-read on every call, so tests can change it at runtime); defaults
/// to [`std::thread::available_parallelism`]. Returns `1` on pool worker
/// threads so parallel kernels never nest.
pub fn num_threads() -> usize {
    if IN_POOL.with(Cell::get) {
        return 1;
    }
    match std::env::var("DDNN_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .map_or_else(default_threads, |n| n.min(256)),
        Err(_) => default_threads(),
    }
}

/// Splits `data` — consecutive items of `item_width` elements each — into
/// contiguous per-worker chunks and runs `f(first_item_index, chunk)` on
/// each chunk concurrently.
///
/// With one worker (or one item) this degenerates to `f(0, data)` on the
/// calling thread. Each item is written by exactly one worker and the
/// per-item computation is the caller's own serial loop, so the result is
/// independent of the thread count.
pub fn par_item_chunks_mut<F>(data: &mut [f32], item_width: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if data.is_empty() || item_width == 0 {
        return;
    }
    let count = data.len() / item_width;
    let workers = num_threads().min(count);
    if workers <= 1 {
        f(0, data);
        return;
    }
    let per = count.div_ceil(workers);
    std::thread::scope(|s| {
        for (ci, chunk) in data.chunks_mut(per * item_width).enumerate() {
            let f = &f;
            s.spawn(move || {
                let _guard = PoolGuard::enter();
                f(ci * per, chunk);
            });
        }
    });
}

/// Applies `f` to every index in `0..count` on the worker pool and returns
/// the results in index order.
///
/// Work is distributed dynamically through an atomic cursor (good for items
/// of uneven cost, e.g. per-device model sections of different depth), but
/// each index is computed by exactly one worker and results are reassembled
/// in index order, so the output is independent of thread count and
/// scheduling.
pub fn par_map_indexed<R, F>(count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = num_threads().min(count);
    if workers <= 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut pairs: Vec<(usize, R)> = Vec::with_capacity(count);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let f = &f;
                let cursor = &cursor;
                s.spawn(move || {
                    let _guard = PoolGuard::enter();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            pairs.extend(h.join().expect("pool worker panicked"));
        }
    });
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Applies `f` to every element of `items` concurrently (static contiguous
/// partition), returning the per-item results in order.
///
/// This is the mutable-access fan-out used for independent model sections:
/// each worker owns a disjoint contiguous sub-slice, so `f` may freely
/// mutate its item.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let count = items.len();
    let workers = num_threads().min(count);
    if workers <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let per = count.div_ceil(workers);
    let mut out: Vec<R> = Vec::with_capacity(count);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(per)
            .enumerate()
            .map(|(ci, chunk)| {
                let f = &f;
                s.spawn(move || {
                    let _guard = PoolGuard::enter();
                    chunk
                        .iter_mut()
                        .enumerate()
                        .map(|(j, t)| f(ci * per + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("pool worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_item_chunks_cover_every_item_once() {
        // 13 items of width 3, incremented once each: no item may be
        // skipped or visited twice regardless of the partition.
        let mut data = vec![0.0f32; 13 * 3];
        par_item_chunks_mut(&mut data, 3, |first, chunk| {
            for (j, item) in chunk.chunks_mut(3).enumerate() {
                for x in item.iter_mut() {
                    *x += (first + j) as f32;
                }
            }
        });
        for (i, item) in data.chunks(3).enumerate() {
            assert!(item.iter().all(|&x| x == i as f32), "item {i}: {item:?}");
        }
    }

    #[test]
    fn par_map_indexed_preserves_order() {
        let out = par_map_indexed(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert!(par_map_indexed(0, |i| i).is_empty());
    }

    #[test]
    fn par_map_mut_mutates_in_place_and_orders_results() {
        let mut items: Vec<usize> = (0..57).collect();
        let out = par_map_mut(&mut items, |i, t| {
            *t += 100;
            i
        });
        assert_eq!(out, (0..57).collect::<Vec<_>>());
        assert!(items.iter().enumerate().all(|(i, &t)| t == i + 100));
    }

    #[test]
    fn nested_calls_fall_back_to_serial() {
        // Inside a pool worker `num_threads()` reports 1, so a nested
        // parallel call must not spawn (it would still be correct, but the
        // guard is what bounds total thread count).
        let inner_counts = par_map_indexed(8, |_| num_threads());
        if num_threads() > 1 {
            assert!(inner_counts.iter().all(|&n| n == 1));
        }
    }
}
