//! Shape algebra: dimension bookkeeping for row-major tensors.

use crate::error::{Result, TensorError};
use std::fmt;

/// The shape of a tensor: an ordered list of dimension extents.
///
/// Shapes are stored densely and interpreted in row-major (C) order: the
/// last axis varies fastest in memory.
///
/// ```
/// use ddnn_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// The scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Number of elements a tensor of this shape holds.
    ///
    /// A rank-0 shape holds exactly one element.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape holds zero elements (some extent is zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Extent of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims.get(axis).copied().ok_or(TensorError::InvalidAxis { axis, rank: self.rank() })
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-dimensional index into a linear offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index has the wrong
    /// rank or any coordinate exceeds its extent.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.rank() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.rank()).rev() {
            if index[axis] >= self.dims[axis] {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.dims.clone(),
                });
            }
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        Ok(off)
    }

    /// Inverse of [`Shape::offset`]: expands a linear offset into coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `offset >= len`.
    pub fn unravel(&self, offset: usize) -> Result<Vec<usize>> {
        if offset >= self.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![offset],
                shape: self.dims.clone(),
            });
        }
        let mut rem = offset;
        let mut out = vec![0; self.rank()];
        for (axis, &stride) in self.strides().iter().enumerate() {
            out[axis] = rem / stride;
            rem %= stride;
        }
        Ok(out)
    }

    /// Returns the shape with axis `axis` removed (as `sum`/`max` along an
    /// axis would produce).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= rank`.
    pub fn without_axis(&self, axis: usize) -> Result<Shape> {
        if axis >= self.rank() {
            return Err(TensorError::InvalidAxis { axis, rank: self.rank() });
        }
        let mut dims = self.dims.clone();
        dims.remove(axis);
        Ok(Shape::new(dims))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_rank() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.rank(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn zero_extent_is_empty() {
        let s = Shape::new(vec![2, 0, 4]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(vec![5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_round_trips_with_unravel() {
        let s = Shape::new(vec![3, 4, 5]);
        for off in 0..s.len() {
            let idx = s.unravel(off).unwrap();
            assert_eq!(s.offset(&idx).unwrap(), off);
        }
    }

    #[test]
    fn offset_rejects_bad_rank() {
        let s = Shape::new(vec![2, 2]);
        assert!(matches!(s.offset(&[1]), Err(TensorError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn offset_rejects_out_of_range_coordinate() {
        let s = Shape::new(vec![2, 2]);
        assert!(s.offset(&[0, 2]).is_err());
    }

    #[test]
    fn unravel_rejects_out_of_range() {
        let s = Shape::new(vec![2, 2]);
        assert!(s.unravel(4).is_err());
    }

    #[test]
    fn without_axis() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.without_axis(1).unwrap(), Shape::new(vec![2, 4]));
        assert!(s.without_axis(3).is_err());
    }

    #[test]
    fn display_formats_parenthesised() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::scalar().to_string(), "()");
    }

    #[test]
    fn conversions() {
        let s: Shape = [1, 2].into();
        assert_eq!(s.dims(), &[1, 2]);
        let s: Shape = vec![3usize].into();
        assert_eq!(s.dims(), &[3]);
        assert_eq!(s.as_ref(), &[3]);
    }
}
