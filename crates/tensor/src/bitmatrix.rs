//! Bit-packed ±1 matrices and XNOR–popcount kernels.
//!
//! The paper's end-device sections are binary networks precisely so they
//! can run in tiny memory with bitwise arithmetic (eBNN, McDanel et al.).
//! This module supplies that compute path: a [`BitMatrix`] stores a ±1
//! matrix as row-packed `u64` words (one bit per element, `+1 → 1`,
//! `−1 → 0` — the same strictly-positive sign convention as
//! [`crate::bits::pack_signs`] and `nn::binarize`), and the dot product of
//! two ±1 rows reduces to
//!
//! ```text
//! dot(a, b) = k − 2·popcount(a XOR b)          (k = row length)
//! ```
//!
//! because XOR counts the positions where the signs disagree (each
//! disagreement contributes −1 instead of +1). Rows are padded to a whole
//! number of words with zero bits; the pad bits of both operands are zero,
//! so `a XOR b` is zero there and the padding never contributes.
//!
//! Convolution lowers to the same kernel through a bit-packed `im2col`
//! ([`binary_conv2d`]): each output pixel's receptive field becomes one bit
//! row. Zero *padding* taps cannot be represented in a ±1 alphabet (a zero
//! would alias to −1), so a per-pixel validity mask rides along and the
//! masked identity is used instead:
//!
//! ```text
//! dot(a, b) = popcount(mask) − 2·popcount((a XOR b) AND mask)
//! ```
//!
//! Every product term is an integer in `{−1, 0, +1}` and every partial sum
//! an integer far below 2^24, so the `f32` results here are **exactly**
//! equal to the float path on binarized operands — bit-identical, not just
//! close — which is what lets the layers above switch kernels freely.

use crate::conv::{check_nchw, Conv2dSpec};
use crate::error::{Result, TensorError};
use crate::parallel;
use crate::simd::{self, SimdTier};
use crate::tensor::Tensor;

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// Minimum `lhs_rows * rhs_rows * cols` before an XNOR GEMM fans out across
/// the worker pool (same rationale as the f32 kernel's threshold, scaled:
/// a word op covers 64 multiply–accumulates).
const PAR_BITOP_THRESHOLD: usize = 1 << 20;

/// Minimum tap-product count before a *batched* convolution fans samples
/// out across the worker pool. Cross-sample fan-out pays a pool dispatch
/// and loses the shared scratch; below this the serial stream (one
/// scratch, warm caches) wins, so the bar is higher than the in-sample
/// pixel-partition threshold.
const BATCH_PAR_THRESHOLD: usize = 8 * PAR_BITOP_THRESHOLD;

/// Output pixels assembled per inner-loop iteration of the fused planar
/// conv kernel. Eight `u64` lanes fill one AVX-512 register (two AVX2
/// registers), so the per-lane extract loops vectorize to `vpsrlvq`.
const CONV_TILE: usize = 8;

/// Reusable buffers for the fused conv kernel, so streaming a batch
/// through one plan allocates once instead of per sample.
#[derive(Default)]
struct ConvScratch {
    /// Packed input rows, one pad-shifted word per `(channel, row)`.
    plane: Vec<u64>,
    /// Pixel-major `(pixels, f)` staging for the output transpose.
    pm: Vec<f32>,
}

/// Branchless scalar packing of up to 64 values: bit `i` is set iff
/// `chunk[i] > 0.0` (ordered compare — false for NaN and both zeros).
#[inline(always)]
fn pack_word_partial(chunk: &[f32]) -> u64 {
    let mut word = 0u64;
    for (i, &x) in chunk.iter().enumerate() {
        word |= u64::from(x > 0.0) << i;
    }
    word
}

/// Packs one full 64-element group into a word. On x86-64 this uses the
/// baseline SSE2 `cmpps`/`movmskps` pair (4 sign tests per instruction);
/// `cmplt(0, x)` is the same ordered `x > 0.0` as the scalar path, so NaN
/// and ±0.0 still pack as `−1`. Packing throughput matters: the activation
/// matrix is re-packed on every kernel call, and for narrow outputs (an
/// exit head has 3 rows) packing, not the GEMM, is the bulk of the work.
#[inline(always)]
fn pack_word64(chunk: &[f32]) -> u64 {
    debug_assert_eq!(chunk.len(), WORD_BITS);
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE2 is part of the x86-64 baseline, and each of the 16
    // 4-wide loads stays inside the 64-element chunk.
    unsafe {
        use std::arch::x86_64::{_mm_cmplt_ps, _mm_loadu_ps, _mm_movemask_ps, _mm_setzero_ps};
        let zero = _mm_setzero_ps();
        let mut word = 0u64;
        for g in 0..WORD_BITS / 4 {
            let v = _mm_loadu_ps(chunk.as_ptr().add(g * 4));
            word |= (_mm_movemask_ps(_mm_cmplt_ps(zero, v)) as u64) << (g * 4);
        }
        word
    }
    #[cfg(not(target_arch = "x86_64"))]
    pack_word_partial(chunk)
}

/// AVX clone of [`pack_word64`]: 8 sign tests per `vcmpps`/`vmovmskps`
/// pair. `_CMP_LT_OQ` is the same ordered `0 < x` compare, so NaN and
/// ±0.0 still pack as `−1`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn pack_word64_avx(chunk: &[f32]) -> u64 {
    debug_assert_eq!(chunk.len(), WORD_BITS);
    use std::arch::x86_64::{
        _mm256_cmp_ps, _mm256_loadu_ps, _mm256_movemask_ps, _mm256_setzero_ps, _CMP_LT_OQ,
    };
    let zero = _mm256_setzero_ps();
    let mut word = 0u64;
    for g in 0..WORD_BITS / 8 {
        let v = _mm256_loadu_ps(chunk.as_ptr().add(g * 8));
        word |= (_mm256_movemask_ps(_mm256_cmp_ps::<_CMP_LT_OQ>(zero, v)) as u32 as u64) << (g * 8);
    }
    word
}

/// SSE2 packing of a *partial* group (`len < 64`): 4-wide compares over
/// the whole 4-chunks, scalar for the remainder. Same ordered `0 < x`
/// predicate as every other packer.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn pack_partial_sse2(chunk: &[f32]) -> u64 {
    // SAFETY: SSE2 is part of the x86-64 baseline, and each 4-wide load
    // stays inside the whole 4-chunks of the slice.
    unsafe {
        use std::arch::x86_64::{_mm_cmplt_ps, _mm_loadu_ps, _mm_movemask_ps, _mm_setzero_ps};
        let zero = _mm_setzero_ps();
        let mut word = 0u64;
        let n4 = chunk.len() / 4 * 4;
        for g in (0..n4).step_by(4) {
            let v = _mm_loadu_ps(chunk.as_ptr().add(g));
            word |= (_mm_movemask_ps(_mm_cmplt_ps(zero, v)) as u64) << g;
        }
        word | (pack_word_partial(&chunk[n4..]) << n4)
    }
}

/// AVX clone of [`pack_partial_sse2`]: 8-wide compares, SSE2/scalar tail.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn pack_partial_avx(chunk: &[f32]) -> u64 {
    use std::arch::x86_64::{
        _mm256_cmp_ps, _mm256_loadu_ps, _mm256_movemask_ps, _mm256_setzero_ps, _CMP_LT_OQ,
    };
    let zero = _mm256_setzero_ps();
    let mut word = 0u64;
    let n8 = chunk.len() / 8 * 8;
    for g in (0..n8).step_by(8) {
        let v = _mm256_loadu_ps(chunk.as_ptr().add(g));
        word |= (_mm256_movemask_ps(_mm256_cmp_ps::<_CMP_LT_OQ>(zero, v)) as u32 as u64) << g;
    }
    word | (pack_partial_sse2(&chunk[n8..]) << n8)
}

/// Packs up to 64 values with the widest compare the tier allows. Used by
/// the fused conv kernel, whose planar rows are usually narrower than a
/// word (a 16-pixel-wide feature map packs 6 144 elements per sample —
/// scalar packing was the second-largest cost of the whole conv).
#[inline(always)]
fn pack_row_tier(chunk: &[f32], tier: SimdTier) -> u64 {
    if chunk.len() == WORD_BITS {
        return pack_word_tier(chunk, tier);
    }
    #[cfg(target_arch = "x86_64")]
    {
        match tier {
            SimdTier::Scalar => pack_word_partial(chunk),
            SimdTier::Sse2 => pack_partial_sse2(chunk),
            // SAFETY: callers resolve the tier through `simd::active_tier`,
            // which clamps to CPU support.
            SimdTier::Avx2 | SimdTier::Avx512 => unsafe { pack_partial_avx(chunk) },
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = tier;
        pack_word_partial(chunk)
    }
}

/// Packs one full 64-element group with the instruction set of the given
/// dispatch tier. All tiers implement the identical strictly-positive sign
/// predicate; they differ only in compare width.
#[inline(always)]
fn pack_word_tier(chunk: &[f32], tier: SimdTier) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        match tier {
            SimdTier::Scalar => pack_word_partial(chunk),
            SimdTier::Sse2 => pack_word64(chunk),
            // SAFETY: callers resolve the tier through `simd::active_tier`
            // (or pass `detected_tier`), which clamps to CPU support.
            SimdTier::Avx2 | SimdTier::Avx512 => unsafe { pack_word64_avx(chunk) },
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = tier;
        pack_word_partial(chunk)
    }
}

/// A ±1 matrix packed one bit per element into row-major `u64` words.
///
/// Element `(r, c)` lives in word `r * words_per_row + c / 64` at bit
/// `c % 64` (LSB-first within a word); a set bit means `+1`, a clear bit
/// `−1`. Trailing pad bits in the last word of each row are always zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-`−1` (all bits clear) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(WORD_BITS);
        BitMatrix { rows, cols, words_per_row, words: vec![0; rows * words_per_row] }
    }

    /// Packs a rank-2 tensor by sign: strictly positive elements become set
    /// bits (`+1`), everything else — including `0.0` and `-0.0` — clear
    /// bits (`−1`). This matches `nn::binarize` and
    /// [`crate::bits::pack_signs`] exactly, so binarized master weights can
    /// be packed directly without materialising `sign(W)` first.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless `t` is rank 2.
    pub fn pack(t: &Tensor) -> Result<BitMatrix> {
        if t.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: t.rank() });
        }
        Ok(Self::pack_slice(t.data(), t.dims()[0], t.dims()[1]))
    }

    /// Packs `rows * cols` row-major values by the same sign convention as
    /// [`BitMatrix::pack`], without requiring a rank-2 tensor.
    pub(crate) fn pack_slice(data: &[f32], rows: usize, cols: usize) -> BitMatrix {
        Self::pack_slice_tier(data, rows, cols, simd::active_tier())
    }

    /// [`BitMatrix::pack_slice`] with an explicitly resolved dispatch tier
    /// (entry points resolve once and thread the tier down, so overrides
    /// reach pool workers).
    fn pack_slice_tier(data: &[f32], rows: usize, cols: usize, tier: SimdTier) -> BitMatrix {
        let mut m = BitMatrix::zeros(rows, cols);
        let wpr = m.words_per_row;
        for r in 0..rows {
            let src = &data[r * cols..(r + 1) * cols];
            let dst = &mut m.words[r * wpr..(r + 1) * wpr];
            let mut chunks = src.chunks_exact(WORD_BITS);
            for (w, chunk) in dst.iter_mut().zip(&mut chunks) {
                *w = pack_word_tier(chunk, tier);
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                dst[wpr - 1] = pack_word_partial(rem);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of (logical) columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of `u64` words storing each row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Whether element `(r, c)` is `+1`.
    pub fn get(&self, r: usize, c: usize) -> bool {
        (self.words[r * self.words_per_row + c / WORD_BITS] >> (c % WORD_BITS)) & 1 == 1
    }

    /// Sets element `(r, c)` to `+1` (true) or `−1` (false).
    pub fn set(&mut self, r: usize, c: usize, positive: bool) {
        let w = &mut self.words[r * self.words_per_row + c / WORD_BITS];
        if positive {
            *w |= 1 << (c % WORD_BITS);
        } else {
            *w &= !(1 << (c % WORD_BITS));
        }
    }

    /// The packed words of row `r`.
    fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Unpacks back to a ±1 `f32` tensor of shape `(rows, cols)`.
    pub fn unpack(&self) -> Tensor {
        Tensor::from_fn([self.rows, self.cols], |i| {
            if self.get(i / self.cols, i % self.cols) {
                1.0
            } else {
                -1.0
            }
        })
    }

    /// XNOR–popcount GEMM: `self (m,k) · rhsᵀ` where `rhs` is `(n,k)`,
    /// producing an `(m,n)` tensor of exact integer-valued dot products.
    ///
    /// Note the rhs is taken row-major over `k` — the natural layout for
    /// both linear-layer weights (`(out, in)`) and im2col patch rows — so
    /// no transpose is ever materialised.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the column counts differ.
    pub fn xnor_matmul(&self, rhs: &BitMatrix) -> Result<Tensor> {
        if self.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
                op: "xnor_matmul",
            });
        }
        let (m, n) = (self.rows, rhs.rows);
        let tier = simd::active_tier();
        let mut out = vec![0.0f32; m * n];
        let kernel = |r0: usize, chunk: &mut [f32]| self.xnor_block(tier, rhs, r0, chunk);
        if m * n * self.cols >= PAR_BITOP_THRESHOLD && parallel::num_threads() > 1 {
            parallel::par_item_chunks_mut(&mut out, n, kernel);
        } else {
            kernel(0, &mut out);
        }
        Tensor::from_vec(out, [m, n])
    }

    /// Serial unmasked XNOR block: fills output rows `r0..` (each `rhs.rows`
    /// columns wide) of `self · rhsᵀ`.
    #[inline(always)]
    fn xnor_block_generic(&self, rhs: &BitMatrix, r0: usize, chunk: &mut [f32]) {
        let (n, k) = (rhs.rows, self.cols as i32);
        for (ri, orow) in chunk.chunks_mut(n).enumerate() {
            let arow = self.row(r0 + ri);
            for (j, o) in orow.iter_mut().enumerate() {
                let mut diff = 0i32;
                for (&aw, &bw) in arow.iter().zip(rhs.row(j)) {
                    diff += (aw ^ bw).count_ones() as i32;
                }
                *o = (k - 2 * diff) as f32;
            }
        }
    }

    /// `popcnt`-enabled clone of [`BitMatrix::xnor_block_generic`]: the
    /// `#[target_feature]` attribute recompiles the inlined body with the
    /// hardware popcount instruction.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "popcnt")]
    unsafe fn xnor_block_popcnt(&self, rhs: &BitMatrix, r0: usize, chunk: &mut [f32]) {
        self.xnor_block_generic(rhs, r0, chunk)
    }

    /// AVX2 clone: the compiler vectorizes the word loop's `count_ones`
    /// reduction with the `vpshufb` nibble-LUT idiom.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn xnor_block_avx2(&self, rhs: &BitMatrix, r0: usize, chunk: &mut [f32]) {
        self.xnor_block_generic(rhs, r0, chunk)
    }

    /// AVX-512 clone: VPOPCNTDQ gives a native 8×64-bit `vpopcntq`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw,avx512vpopcntdq,popcnt")]
    unsafe fn xnor_block_avx512(&self, rhs: &BitMatrix, r0: usize, chunk: &mut [f32]) {
        self.xnor_block_generic(rhs, r0, chunk)
    }

    /// Tier-dispatched unmasked XNOR block. `tier` must come from
    /// [`simd::active_tier`] (clamped to CPU support).
    #[inline]
    fn xnor_block(&self, tier: SimdTier, rhs: &BitMatrix, r0: usize, chunk: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier is clamped to the detected CPU features.
        match tier {
            SimdTier::Scalar => self.xnor_block_generic(rhs, r0, chunk),
            SimdTier::Sse2 => unsafe { self.xnor_block_popcnt(rhs, r0, chunk) },
            SimdTier::Avx2 => unsafe { self.xnor_block_avx2(rhs, r0, chunk) },
            SimdTier::Avx512 => unsafe { self.xnor_block_avx512(rhs, r0, chunk) },
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = tier;
            self.xnor_block_generic(rhs, r0, chunk)
        }
    }

    /// Masked XNOR–popcount GEMM for zero-padded operands: positions where
    /// the per-rhs-row `mask` bit is clear contribute `0` to the dot
    /// product instead of ±1.
    ///
    /// `mask` must have the same shape as `rhs`; row `j` of the output
    /// column `j` uses `popcount(mask_j) − 2·popcount((a_i ^ b_j) & mask_j)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if column counts differ or
    /// the mask shape does not match `rhs`.
    pub fn xnor_matmul_masked(&self, rhs: &BitMatrix, mask: &BitMatrix) -> Result<Tensor> {
        if self.cols != rhs.cols || mask.rows != rhs.rows || mask.cols != rhs.cols {
            return Err(TensorError::ShapeMismatch {
                lhs: vec![self.rows, self.cols],
                rhs: vec![rhs.rows, rhs.cols],
                op: "xnor_matmul_masked",
            });
        }
        let valid: Vec<i32> = (0..rhs.rows)
            .map(|j| mask.row(j).iter().map(|w| w.count_ones() as i32).sum())
            .collect();
        let mut out = vec![0.0f32; self.rows * rhs.rows];
        self.xnor_masked_into(simd::active_tier(), rhs, mask, &valid, &mut out);
        Tensor::from_vec(out, [self.rows, rhs.rows])
    }

    /// Shape-unchecked core of [`BitMatrix::xnor_matmul_masked`], writing
    /// into a caller-provided buffer (used by the conv lowering, whose
    /// shapes are consistent by construction).
    fn xnor_masked_into(
        &self,
        tier: SimdTier,
        rhs: &BitMatrix,
        mask: &BitMatrix,
        valid: &[i32],
        out: &mut [f32],
    ) {
        let n = rhs.rows;
        let kernel = |r0: usize, chunk: &mut [f32]| {
            self.xnor_masked_block(tier, rhs, mask, valid, r0, chunk)
        };
        if self.rows * n * self.cols >= PAR_BITOP_THRESHOLD && parallel::num_threads() > 1 {
            parallel::par_item_chunks_mut(out, n, kernel);
        } else {
            kernel(0, out);
        }
    }

    /// Serial masked XNOR block: fills output rows `r0..` of the masked GEMM.
    #[inline(always)]
    fn xnor_masked_block_generic(
        &self,
        rhs: &BitMatrix,
        mask: &BitMatrix,
        valid: &[i32],
        r0: usize,
        chunk: &mut [f32],
    ) {
        let n = rhs.rows;
        for (ri, orow) in chunk.chunks_mut(n).enumerate() {
            let arow = self.row(r0 + ri);
            for (j, o) in orow.iter_mut().enumerate() {
                let mut diff = 0i32;
                for ((&aw, &bw), &mw) in arow.iter().zip(rhs.row(j)).zip(mask.row(j)) {
                    diff += ((aw ^ bw) & mw).count_ones() as i32;
                }
                *o = (valid[j] - 2 * diff) as f32;
            }
        }
    }

    /// `popcnt`-enabled clone of [`BitMatrix::xnor_masked_block_generic`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "popcnt")]
    unsafe fn xnor_masked_block_popcnt(
        &self,
        rhs: &BitMatrix,
        mask: &BitMatrix,
        valid: &[i32],
        r0: usize,
        chunk: &mut [f32],
    ) {
        self.xnor_masked_block_generic(rhs, mask, valid, r0, chunk)
    }

    /// AVX2 clone of [`BitMatrix::xnor_masked_block_generic`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn xnor_masked_block_avx2(
        &self,
        rhs: &BitMatrix,
        mask: &BitMatrix,
        valid: &[i32],
        r0: usize,
        chunk: &mut [f32],
    ) {
        self.xnor_masked_block_generic(rhs, mask, valid, r0, chunk)
    }

    /// AVX-512 VPOPCNTDQ clone of [`BitMatrix::xnor_masked_block_generic`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw,avx512vpopcntdq,popcnt")]
    unsafe fn xnor_masked_block_avx512(
        &self,
        rhs: &BitMatrix,
        mask: &BitMatrix,
        valid: &[i32],
        r0: usize,
        chunk: &mut [f32],
    ) {
        self.xnor_masked_block_generic(rhs, mask, valid, r0, chunk)
    }

    /// Tier-dispatched masked XNOR block.
    #[inline]
    fn xnor_masked_block(
        &self,
        tier: SimdTier,
        rhs: &BitMatrix,
        mask: &BitMatrix,
        valid: &[i32],
        r0: usize,
        chunk: &mut [f32],
    ) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier is clamped to the detected CPU features.
        match tier {
            SimdTier::Scalar => self.xnor_masked_block_generic(rhs, mask, valid, r0, chunk),
            SimdTier::Sse2 => unsafe { self.xnor_masked_block_popcnt(rhs, mask, valid, r0, chunk) },
            SimdTier::Avx2 => unsafe { self.xnor_masked_block_avx2(rhs, mask, valid, r0, chunk) },
            SimdTier::Avx512 => unsafe {
                self.xnor_masked_block_avx512(rhs, mask, valid, r0, chunk)
            },
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = tier;
            self.xnor_masked_block_generic(rhs, mask, valid, r0, chunk)
        }
    }
}

/// Whether every element is exactly `+1.0` or `-1.0` — the precondition
/// for the XNOR kernels. Inputs that fail this (raw float images, zero
/// padding already baked into the data) must take the f32 path.
pub fn is_sign_tensor(t: &Tensor) -> bool {
    t.data().iter().all(|&x| x == 1.0 || x == -1.0)
}

/// `x · wᵀ` for ±1 tensors via XNOR–popcount: `x` is `(n, k)`, `w` is
/// `(m, k)` (linear-layer weight layout), the result `(n, m)` — exactly
/// equal to `x.matmul(&w.transpose())` on binarized operands.
///
/// # Errors
///
/// Returns an error unless both tensors are rank 2 with matching width.
pub fn binary_matmul(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    let xb = BitMatrix::pack(x)?;
    let wb = BitMatrix::pack(w)?;
    xb.xnor_matmul(&wb)
}

/// Streaming bit writer for one packed row: accumulates taps in a register
/// and spills one whole `u64` per word boundary, so the hot packing loops
/// never read-modify-write the backing vector per tap.
struct RowBits<'a> {
    words: &'a mut [u64],
    cur: u64,
    tap: usize,
}

impl RowBits<'_> {
    #[inline(always)]
    fn push(&mut self, bit: bool) {
        self.cur |= u64::from(bit) << (self.tap % WORD_BITS);
        self.tap += 1;
        if self.tap.is_multiple_of(WORD_BITS) {
            self.words[self.tap / WORD_BITS - 1] = self.cur;
            self.cur = 0;
        }
    }

    /// Pushes `count` clear bits (out-of-bounds taps of a skipped row).
    #[inline(always)]
    fn skip(&mut self, count: usize) {
        for _ in 0..count {
            self.push(false);
        }
    }

    /// Pushes `count < 64` bits at once (`bits` holds them LSB-first),
    /// splitting across a word boundary when needed.
    #[inline(always)]
    fn push_group(&mut self, bits: u64, count: usize) {
        debug_assert!(count < WORD_BITS && (count == 63 || bits >> count == 0));
        let pos = self.tap % WORD_BITS;
        self.cur |= bits << pos;
        let before = self.tap / WORD_BITS;
        self.tap += count;
        if self.tap / WORD_BITS > before {
            self.words[before] = self.cur;
            // Crossing implies pos > 0, so the shift below is in range.
            self.cur = bits >> (WORD_BITS - pos);
        }
    }

    /// Spills the final partial word, if any.
    fn finish(self) {
        if !self.tap.is_multiple_of(WORD_BITS) {
            self.words[self.tap / WORD_BITS] = self.cur;
        }
    }
}

/// Builds the per-output-pixel bit rows of one batch element: row
/// `oy*ow + ox` holds the `c*kh*kw` receptive-field taps of that output
/// pixel, in the same tap order as [`crate::conv::im2col`] rows.
fn pack_patches(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    oh: usize,
    ow: usize,
) -> BitMatrix {
    let kk = c * spec.kernel_h * spec.kernel_w;
    let mut m = BitMatrix::zeros(oh * ow, kk);
    if w <= WORD_BITS && spec.kernel_w < WORD_BITS && spec.padding < WORD_BITS {
        pack_patches_planar(data, c, h, w, spec, (oh, ow), &mut m);
    } else {
        pack_patches_general(data, c, h, w, spec, (oh, ow), &mut m);
    }
    m
}

/// Fast path for inputs at most one word wide (every paper geometry):
/// packs each input row into a single `u64` once, then assembles every
/// receptive-field row of every patch with one shift-and-mask per
/// `(channel, ky)` group instead of per-tap float compares. This is what
/// keeps the bit-`im2col` from dominating the conv kernel — packing cost
/// per tap drops from ~10 ops to ~10 ops per *kernel row*.
fn pack_patches_planar(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    (oh, ow): (usize, usize),
    m: &mut BitMatrix,
) {
    let kw = spec.kernel_w;
    let kmask = (1u64 << kw) - 1;
    let mut plane_bits = vec![0u64; c * h];
    for (r, bits) in plane_bits.iter_mut().enumerate() {
        *bits = pack_word_partial(&data[r * w..(r + 1) * w]);
    }
    let wpr = m.words_per_row;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let ix0 = (ox * spec.stride) as isize - spec.padding as isize;
            let mut bits =
                RowBits { words: &mut m.words[row * wpr..(row + 1) * wpr], cur: 0, tap: 0 };
            for ch in 0..c {
                let prows = &plane_bits[ch * h..(ch + 1) * h];
                for ky in 0..spec.kernel_h {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    let g = if iy < 0 || iy >= h as isize {
                        0
                    } else {
                        // Out-of-range x taps shift in zero bits from either
                        // end; in-range bits land LSB-first at kx.
                        let prow = prows[iy as usize];
                        if ix0 >= 0 {
                            (prow >> ix0) & kmask
                        } else {
                            (prow << -ix0) & kmask
                        }
                    };
                    bits.push_group(g, kw);
                }
            }
            bits.finish();
        }
    }
}

/// General per-tap packing for geometries too wide for the planar path.
fn pack_patches_general(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    (oh, ow): (usize, usize),
    m: &mut BitMatrix,
) {
    let wpr = m.words_per_row;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let mut bits =
                RowBits { words: &mut m.words[row * wpr..(row + 1) * wpr], cur: 0, tap: 0 };
            for ch in 0..c {
                let plane = &data[ch * h * w..(ch + 1) * h * w];
                for ky in 0..spec.kernel_h {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        bits.skip(spec.kernel_w);
                        continue;
                    }
                    let irow = &plane[iy as usize * w..iy as usize * w + w];
                    for kx in 0..spec.kernel_w {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        let inside = ix >= 0 && ix < w as isize;
                        // The clamped index keeps the load in bounds for
                        // padding taps; `inside` zeroes their contribution.
                        bits.push(inside && irow[ix.clamp(0, w as isize - 1) as usize] > 0.0);
                    }
                }
            }
            bits.finish();
        }
    }
}

/// Builds the validity mask shared by every batch element: bit `tap` of row
/// `oy*ow + ox` is set iff that tap falls inside the unpadded input. The
/// geometry pattern is replicated across channels, so each row is
/// assembled from one `ky`-validity word and one `kx`-validity group
/// (falling back to per-tap pushes for enormous kernels).
fn geometry_mask(
    c: usize,
    h: usize,
    w: usize,
    spec: &Conv2dSpec,
    oh: usize,
    ow: usize,
) -> BitMatrix {
    let (kh, kw) = (spec.kernel_h, spec.kernel_w);
    let kk = c * kh * kw;
    let mut m = BitMatrix::zeros(oh * ow, kk);
    let wpr = m.words_per_row;
    for oy in 0..oh {
        let mut ymask = 0u64;
        if kh < WORD_BITS && kw < WORD_BITS {
            for ky in 0..kh {
                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                ymask |= u64::from(iy >= 0 && iy < h as isize) << ky;
            }
        }
        for ox in 0..ow {
            let row = oy * ow + ox;
            let mut bits =
                RowBits { words: &mut m.words[row * wpr..(row + 1) * wpr], cur: 0, tap: 0 };
            if kh < WORD_BITS && kw < WORD_BITS {
                let mut xmask = 0u64;
                for kx in 0..kw {
                    let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                    xmask |= u64::from(ix >= 0 && ix < w as isize) << kx;
                }
                for _ch in 0..c {
                    for ky in 0..kh {
                        bits.push_group(if (ymask >> ky) & 1 == 1 { xmask } else { 0 }, kw);
                    }
                }
            } else {
                for _ch in 0..c {
                    for ky in 0..kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        let y_in = iy >= 0 && iy < h as isize;
                        for kx in 0..kw {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            bits.push(y_in && ix >= 0 && ix < w as isize);
                        }
                    }
                }
            }
            bits.finish();
        }
    }
    m
}

/// Bit-packed `im2col`: lowers one ±1 NCHW batch into per-batch patch
/// matrices (`oh*ow` rows of `c*kh*kw` taps each) plus the shared validity
/// mask for the zero-padding taps.
///
/// # Errors
///
/// Returns an error for non-rank-4 input or degenerate geometry.
pub fn bit_im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<(Vec<BitMatrix>, BitMatrix)> {
    let (n, c, h, w) = check_nchw(input, "bit_im2col")?;
    let (oh, ow) = spec.checked_output_size(h, w)?;
    let data = input.data();
    let patches = parallel::par_map_indexed(n, |b| {
        pack_patches(&data[b * c * h * w..(b + 1) * c * h * w], c, h, w, spec, oh, ow)
    });
    Ok((patches, geometry_mask(c, h, w, spec, oh, ow)))
}

/// A prepared binary convolution: weights packed once, geometry resolved
/// once, then any number of same-shaped ±1 samples streamed through the
/// fused pack-and-popcount kernel.
///
/// The fused kernel never materialises the packed column matrix of
/// [`bit_im2col`]: each output pixel's bit row is assembled tile-by-tile
/// into a words-per-patch scratch (a handful of `u64`s, L1-resident) and
/// immediately dotted against every filter via the word-transposed weight
/// copy, so the inner loop vectorizes across filters under the wider
/// [`SimdTier`]s. Interior pixels — the vast majority — skip the padding
/// mask entirely; border pixels assemble a mask row from precomputed
/// per-`oy`/per-`ox` validity words. Inputs wider than one word fall back
/// to the two-phase lowering ([`pack_patches`] + masked GEMM), which
/// handles arbitrary geometry.
///
/// Outputs are exact integers either way, bit-identical to the f32 sign
/// path and to the two-phase reference on every dispatch tier.
#[derive(Debug, Clone)]
pub struct BinaryConvPlan {
    /// Packed `(f, c*kh*kw)` weights in `(ch, ky, kx)` tap order.
    wbits: BitMatrix,
    spec: Conv2dSpec,
    c: usize,
    h: usize,
    w: usize,
    f: usize,
    oh: usize,
    ow: usize,
    /// Whether the single-word-wide fused kernel applies.
    planar: bool,
    /// Planar: bit `ky` of `ymasks[oy]` is set iff input row
    /// `oy*stride + ky - padding` is in bounds.
    ymasks: Vec<u64>,
    /// Planar: bit `kx` of `xmasks[ox]` is set iff input column
    /// `ox*stride + kx - padding` is in bounds.
    xmasks: Vec<u64>,
    /// Planar: border output pixels (those with any out-of-bounds tap)
    /// as `(pixel index, mask-combo index)` pairs, row-major order.
    border: Vec<(u32, u32)>,
    /// Planar: additive border corrections, laid out `[fi][combo]`:
    /// `valid + 2·popcount(w AND NOT mask) − kk` turns the unmasked
    /// XNOR identity into the masked one (see `conv_sample`).
    deltas_t: Vec<i64>,
    /// Number of distinct `(ymask, xmask)` border combos.
    ncombos: usize,
    /// General fallback: the full per-pixel validity mask…
    mask: Option<BitMatrix>,
    /// …and its per-pixel popcounts.
    valid: Vec<i32>,
}

impl BinaryConvPlan {
    /// Prepares a plan for convolving `(n, c, h, w)` ±1 inputs with the
    /// given sign-packed weight tensor (`(f, c, kh, kw)`).
    ///
    /// # Errors
    ///
    /// Returns an error for a non-rank-4 weight, a kernel size differing
    /// from `spec`, or degenerate geometry.
    pub fn new(weight: &Tensor, spec: &Conv2dSpec, h: usize, w: usize) -> Result<BinaryConvPlan> {
        let (f, c, kh, kw) = check_nchw(weight, "binary_conv_plan")?;
        if kh != spec.kernel_h || kw != spec.kernel_w {
            return Err(TensorError::ShapeMismatch {
                lhs: weight.dims().to_vec(),
                rhs: vec![f, c, spec.kernel_h, spec.kernel_w],
                op: "binary_conv_plan",
            });
        }
        let (oh, ow) = spec.checked_output_size(h, w)?;
        let kk = c * kh * kw;
        let wbits = BitMatrix::pack_slice(weight.data(), f, kk);
        let wpk = wbits.words_per_row;
        // The fused kernel pre-shifts each packed input row left by `pad`
        // so a tap group for output column `ox` is always
        // `(row >> ox*stride) & kmask` with an in-range shift count —
        // that needs the padded row (w + 2*pad bits of addressable
        // positions) to fit one word.
        let planar = w + 2 * spec.padding <= WORD_BITS && kw < WORD_BITS && kh < WORD_BITS;
        let mut plan = BinaryConvPlan {
            wbits,
            spec: *spec,
            c,
            h,
            w,
            f,
            oh,
            ow,
            planar,
            ymasks: Vec::new(),
            xmasks: Vec::new(),
            border: Vec::new(),
            deltas_t: Vec::new(),
            ncombos: 0,
            mask: None,
            valid: Vec::new(),
        };
        if planar {
            plan.ymasks = (0..oh)
                .map(|oy| {
                    let mut m = 0u64;
                    for ky in 0..kh {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        m |= u64::from(iy >= 0 && iy < h as isize) << ky;
                    }
                    m
                })
                .collect();
            plan.xmasks = (0..ow)
                .map(|ox| {
                    let mut m = 0u64;
                    for kx in 0..kw {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        m |= u64::from(ix >= 0 && ix < w as isize) << kx;
                    }
                    m
                })
                .collect();
            // Pre-shifted rows put a zero bit at every out-of-bounds tap,
            // so the kernel can run the *unmasked* identity everywhere and
            // border pixels are repaired afterwards by a per-(masks, fi)
            // additive delta:
            //
            //   popcount(p^w) = popcount((p^w)&m) + popcount(w & !m)
            //   masked = valid − 2·popcount((p^w)&m)
            //          = (kk − 2·popcount(p^w)) + (valid + 2·corr − kk)
            //
            // with `corr = popcount(w & !m)` (p is zero wherever m is).
            let full_y = (1u64 << kh) - 1;
            let full_x = (1u64 << kw) - 1;
            let mut combos: Vec<(u64, u64)> = Vec::new();
            for oy in 0..oh {
                for ox in 0..ow {
                    let pair = (plan.ymasks[oy], plan.xmasks[ox]);
                    if pair == (full_y, full_x) {
                        continue;
                    }
                    let cb = match combos.iter().position(|&p| p == pair) {
                        Some(i) => i,
                        None => {
                            combos.push(pair);
                            combos.len() - 1
                        }
                    };
                    plan.border.push(((oy * ow + ox) as u32, cb as u32));
                }
            }
            plan.ncombos = combos.len();
            plan.deltas_t = vec![0i64; f * combos.len()];
            let mut maskrow = vec![0u64; wpk];
            for (cb, &(ym, xm)) in combos.iter().enumerate() {
                maskrow.fill(0);
                let mut mb = RowBits { words: &mut maskrow, cur: 0, tap: 0 };
                for _ch in 0..c {
                    for ky in 0..kh {
                        mb.push_group(if (ym >> ky) & 1 == 1 { xm } else { 0 }, kw);
                    }
                }
                mb.finish();
                let valid = c as i64 * i64::from(ym.count_ones()) * i64::from(xm.count_ones());
                for fi in 0..f {
                    let corr: i64 = plan
                        .wbits
                        .row(fi)
                        .iter()
                        .zip(maskrow.iter())
                        .map(|(&wv, &m)| i64::from((wv & !m).count_ones()))
                        .sum();
                    plan.deltas_t[fi * combos.len() + cb] = valid + 2 * corr - kk as i64;
                }
            }
        } else {
            let mask = geometry_mask(c, h, w, spec, oh, ow);
            plan.valid = (0..oh * ow)
                .map(|j| mask.row(j).iter().map(|v| v.count_ones() as i32).sum())
                .collect();
            plan.mask = Some(mask);
        }
        Ok(plan)
    }

    /// Output spatial size.
    pub fn output_size(&self) -> (usize, usize) {
        (self.oh, self.ow)
    }

    /// Number of output filters.
    pub fn filters(&self) -> usize {
        self.f
    }

    /// Runs the plan over an NCHW batch, streaming each sample through the
    /// fused kernel (batch elements fan out across the worker pool; a
    /// single sample pixel-partitions instead).
    ///
    /// # Errors
    ///
    /// Returns an error if `input` is not rank 4 or its `(c, h, w)` differ
    /// from the plan's.
    pub fn run(&self, input: &Tensor) -> Result<Tensor> {
        let (n, c, h, w) = check_nchw(input, "binary_conv2d")?;
        if c != self.c || h != self.h || w != self.w {
            return Err(TensorError::ShapeMismatch {
                lhs: input.dims().to_vec(),
                rhs: vec![n, self.c, self.h, self.w],
                op: "binary_conv2d",
            });
        }
        let tier = simd::active_tier();
        let fp = self.f * self.oh * self.ow;
        let chw = c * h * w;
        let mut out = vec![0.0f32; n * fp];
        let data = input.data();
        if n > 1 && self.batch_work(n) >= BATCH_PAR_THRESHOLD && parallel::num_threads() > 1 {
            parallel::par_item_chunks_mut(&mut out, fp, |b0, chunk| {
                let mut scratch = ConvScratch::default();
                for (bi, res) in chunk.chunks_mut(fp).enumerate() {
                    self.conv_sample(tier, &data[(b0 + bi) * chw..][..chw], res, &mut scratch);
                }
            });
        } else {
            let mut scratch = ConvScratch::default();
            for (b, res) in out.chunks_mut(fp).enumerate() {
                self.conv_sample(tier, &data[b * chw..][..chw], res, &mut scratch);
            }
        }
        Tensor::from_vec(out, [n, self.f, self.oh, self.ow])
    }

    /// Tap-product count for an `n`-sample batch — the fan-out gate.
    fn batch_work(&self, n: usize) -> usize {
        n * self.f * self.oh * self.ow * self.c * self.spec.kernel_h * self.spec.kernel_w
    }

    /// Convolves one `(c, h, w)` sample into its `(f, oh*ow)` output
    /// slice. Parallelises over pixel tiles when called outside the pool
    /// with enough work; inside pool workers this degenerates to the
    /// serial loop (the nesting guard makes `num_threads()` report 1), so
    /// every element is always computed by the same instruction sequence.
    fn conv_sample(
        &self,
        tier: SimdTier,
        data: &[f32],
        out: &mut [f32],
        scratch: &mut ConvScratch,
    ) {
        let pixels = self.oh * self.ow;
        if !self.planar {
            let patches = pack_patches(data, self.c, self.h, self.w, &self.spec, self.oh, self.ow);
            let mask = self.mask.as_ref().expect("general path carries a mask");
            self.wbits.xnor_masked_into(tier, &patches, mask, &self.valid, out);
            return;
        }
        // Pack each input row into one word, pre-shifted by the padding so
        // the tap group for column `ox` is always `(row >> ox*stride)` —
        // the only pass over the f32s. The shift also lands a zero bit at
        // every out-of-bounds tap (left-pad taps read the low zeros, right
        // ones read past the packed width), which is what lets the kernel
        // below skip masking entirely.
        scratch.plane.clear();
        scratch.plane.resize(self.c * self.h, 0);
        for (r, bits) in scratch.plane.iter_mut().enumerate() {
            *bits = pack_row_tier(&data[r * self.w..][..self.w], tier) << self.spec.padding;
        }
        let plane_bits: &[u64] = &scratch.plane;
        if self.batch_work(1) >= PAR_BITOP_THRESHOLD && parallel::num_threads() > 1 {
            // Pixel-major scratch (pixels, f): workers own contiguous pixel
            // ranges, then one serial transpose lands the (f, pixels)
            // layout. Same arithmetic as the serial path — only the store
            // order differs — so results stay bit-identical.
            scratch.pm.clear();
            scratch.pm.resize(pixels * self.f, 0.0);
            let pm = &mut scratch.pm[..];
            parallel::par_item_chunks_mut(pm, self.f, |j0, chunk| {
                self.conv_pixels(tier, plane_bits, j0, chunk, false);
            });
            for j in 0..pixels {
                for fi in 0..self.f {
                    out[fi * pixels + j] = pm[j * self.f + fi];
                }
            }
        } else {
            self.conv_pixels(tier, plane_bits, 0, out, true);
        }
        // Border repair: the kernel ran the unmasked identity everywhere;
        // add the precomputed per-(masks, filter) delta on the few pixels
        // whose receptive field leaves the input. Both operands are exact
        // small integers, so the f32 add is exact and the result matches
        // the masked identity bit for bit.
        if !self.border.is_empty() {
            for fi in 0..self.f {
                let drow = &self.deltas_t[fi * self.ncombos..][..self.ncombos];
                let orow = &mut out[fi * pixels..][..pixels];
                for &(j, cb) in &self.border {
                    orow[j as usize] += drow[cb as usize] as f32;
                }
            }
        }
    }

    /// The fused planar kernel over output pixels `j0..j0 + dst.len()/f`.
    ///
    /// Works one output row at a time: the y-validity test is hoisted out
    /// of the pixel loop by materializing `srow` — the pad-shifted source
    /// word per `(channel, ky)` group, zero for out-of-bounds rows — then
    /// patch rows for [`CONV_TILE`] pixels are assembled together and
    /// dotted against every filter with the *unmasked* XNOR identity
    /// (invalid taps carry zero bits; `conv_sample` repairs the border
    /// afterwards). The per-lane loops have fixed trip counts, which is
    /// the shape LLVM turns into variable-shift (`vpsrlvq`) and 8-lane
    /// popcount (`vpopcntq`) SIMD under the AVX2/AVX-512 clones; every
    /// tier runs this same body, so outputs are identical by construction.
    ///
    /// With `direct` set, `dst` is the whole `(f, oh*ow)` output and tile
    /// results store straight into their final planes; otherwise `dst` is
    /// a pixel-major `(span, f)` chunk (the parallel path's layout).
    #[inline(always)]
    fn conv_pixels_generic(&self, plane_bits: &[u64], j0: usize, dst: &mut [f32], direct: bool) {
        const TILE: usize = CONV_TILE;
        let (kh, kw) = (self.spec.kernel_h, self.spec.kernel_w);
        let (stride, pad) = (self.spec.stride, self.spec.padding as isize);
        let kmask = (1u64 << kw) - 1;
        let kk = (self.c * kh * kw) as i64;
        let f = self.f;
        let groups = self.c * kh;
        let span = dst.len() / f;
        let end = j0 + span;
        let mut srow = vec![0u64; groups];
        let mut patchv = vec![0u64; self.wbits.words_per_row * TILE];
        let mut j = j0;
        while j < end {
            let oy = j / self.ow;
            let row_end = ((oy + 1) * self.ow).min(end);
            let ymask = self.ymasks[oy];
            let iy0 = (oy * stride) as isize - pad;
            for ch in 0..self.c {
                let prows = &plane_bits[ch * self.h..][..self.h];
                for ky in 0..kh {
                    srow[ch * kh + ky] = if (ymask >> ky) & 1 == 1 {
                        prows[(iy0 + ky as isize) as usize]
                    } else {
                        0
                    };
                }
            }
            while j < row_end {
                let ox = j % self.ow;
                let nl = TILE.min(row_end - j);
                // Per-lane shift counts; tail lanes repeat the last valid
                // pixel (their results are discarded below), so every
                // shift stays in range — the planar bound guarantees
                // `ox*stride + kw <= w + 2*pad <= 64`.
                let mut sx = [0u32; TILE];
                for (l, s) in sx.iter_mut().enumerate() {
                    *s = ((ox + l.min(nl - 1)) * stride) as u32;
                }
                patchv.fill(0);
                for (g, &s) in srow.iter().enumerate() {
                    let bit = g * kw;
                    let (tw, tb) = (bit >> 6, (bit & 63) as u32);
                    let pv = &mut patchv[tw * TILE..][..TILE];
                    for (l, p) in pv.iter_mut().enumerate() {
                        *p |= ((s >> sx[l]) & kmask) << tb;
                    }
                    if tb as usize + kw > 64 {
                        // The group straddles a word boundary: spill the
                        // high taps into the next word.
                        let pv2 = &mut patchv[(tw + 1) * TILE..][..TILE];
                        for (l, p) in pv2.iter_mut().enumerate() {
                            *p |= ((s >> sx[l]) & kmask) >> (64 - tb);
                        }
                    }
                }
                for fi in 0..f {
                    let wrow = self.wbits.row(fi);
                    let mut acc = [0i64; TILE];
                    for (wi, &wv) in wrow.iter().enumerate() {
                        let pv = &patchv[wi * TILE..][..TILE];
                        for (a, &p) in acc.iter_mut().zip(pv) {
                            *a += i64::from((p ^ wv).count_ones());
                        }
                    }
                    if direct {
                        let orow = &mut dst[fi * span + j..][..nl];
                        for (o, &a) in orow.iter_mut().zip(acc.iter()) {
                            *o = (kk - 2 * a) as f32;
                        }
                    } else {
                        for (l, &a) in acc.iter().take(nl).enumerate() {
                            dst[(j - j0 + l) * f + fi] = (kk - 2 * a) as f32;
                        }
                    }
                }
                j += nl;
            }
        }
    }

    /// `popcnt` clone of [`BinaryConvPlan::conv_pixels_generic`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "popcnt")]
    unsafe fn conv_pixels_popcnt(&self, plane_bits: &[u64], j0: usize, dst: &mut [f32], d: bool) {
        self.conv_pixels_generic(plane_bits, j0, dst, d)
    }

    /// AVX2 clone: tile assembly vectorizes to `vpsrlvq`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn conv_pixels_avx2(&self, plane_bits: &[u64], j0: usize, dst: &mut [f32], d: bool) {
        self.conv_pixels_generic(plane_bits, j0, dst, d)
    }

    /// AVX-512 VPOPCNTDQ clone: `vpopcntq` across the 8 tile lanes.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw,avx512vpopcntdq,popcnt")]
    unsafe fn conv_pixels_avx512(&self, plane_bits: &[u64], j0: usize, dst: &mut [f32], d: bool) {
        self.conv_pixels_generic(plane_bits, j0, dst, d)
    }

    /// Tier-dispatched fused planar kernel.
    #[inline]
    fn conv_pixels(&self, tier: SimdTier, plane_bits: &[u64], j0: usize, dst: &mut [f32], d: bool) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier is clamped to the detected CPU features.
        match tier {
            SimdTier::Scalar => self.conv_pixels_generic(plane_bits, j0, dst, d),
            SimdTier::Sse2 => unsafe { self.conv_pixels_popcnt(plane_bits, j0, dst, d) },
            SimdTier::Avx2 => unsafe { self.conv_pixels_avx2(plane_bits, j0, dst, d) },
            SimdTier::Avx512 => unsafe { self.conv_pixels_avx512(plane_bits, j0, dst, d) },
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = tier;
            self.conv_pixels_generic(plane_bits, j0, dst, d)
        }
    }
}

/// Binary 2-D convolution: the XNOR–popcount equivalent of
/// [`crate::conv::conv2d`] for ±1 input and binarized weights.
///
/// `weight` is packed by sign (strictly positive → `+1`), so binarized
/// master weights can be passed directly. On valid operands the result is
/// bit-identical to `conv2d(input, &binarize(weight), spec)`.
///
/// Builds a [`BinaryConvPlan`] and streams the batch through it: weights
/// are packed once per call and bit-packing is fused into the conv inner
/// loop, so a multi-sample batch (the runtime's micro-batched tiers) pays
/// the weight and geometry setup once.
///
/// # Errors
///
/// Returns an error for non-rank-4 operands, mismatched channel counts or
/// degenerate geometry.
pub fn binary_conv2d(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    let (_, c, h, w) = check_nchw(input, "binary_conv2d")?;
    let (_, wc, _, _) = check_nchw(weight, "binary_conv2d")?;
    if wc != c {
        return Err(TensorError::ShapeMismatch {
            lhs: input.dims().to_vec(),
            rhs: weight.dims().to_vec(),
            op: "binary_conv2d",
        });
    }
    BinaryConvPlan::new(weight, spec, h, w)?.run(input)
}

/// Batched binary convolution over independent `(c, h, w)` samples: packs
/// the shared weight matrix once, then streams every sample through the
/// fused kernel, fanning the samples out across the worker pool.
///
/// This is the entry point for the runtime's micro-batch drain: `inputs`
/// are the per-sample feature maps a tier dequeued, and each output is the
/// corresponding `(f, oh, ow)` map, bit-identical to convolving that
/// sample alone.
///
/// # Errors
///
/// Returns an error if any input is not rank 3, the samples disagree in
/// shape, the channel count mismatches the weight, or the geometry is
/// degenerate.
pub fn binary_conv2d_batch(
    inputs: &[Tensor],
    weight: &Tensor,
    spec: &Conv2dSpec,
) -> Result<Vec<Tensor>> {
    let Some(first) = inputs.first() else {
        return Ok(Vec::new());
    };
    for t in inputs {
        if t.rank() != 3 {
            return Err(TensorError::RankMismatch { expected: 3, actual: t.rank() });
        }
        if t.dims() != first.dims() {
            return Err(TensorError::ShapeMismatch {
                lhs: first.dims().to_vec(),
                rhs: t.dims().to_vec(),
                op: "binary_conv2d_batch",
            });
        }
    }
    let (c, h, w) = (first.dims()[0], first.dims()[1], first.dims()[2]);
    if c == 0 || h == 0 || w == 0 {
        return Err(TensorError::Empty { op: "binary_conv2d_batch" });
    }
    let plan = BinaryConvPlan::new(weight, spec, h, w)?;
    if plan.c != c {
        return Err(TensorError::ShapeMismatch {
            lhs: first.dims().to_vec(),
            rhs: weight.dims().to_vec(),
            op: "binary_conv2d_batch",
        });
    }
    let tier = simd::active_tier();
    let (f, oh, ow) = (plan.f, plan.oh, plan.ow);
    let fp = f * oh * ow;
    if plan.batch_work(inputs.len()) >= BATCH_PAR_THRESHOLD && parallel::num_threads() > 1 {
        parallel::par_map_indexed(inputs.len(), |i| {
            let mut scratch = ConvScratch::default();
            let mut res = vec![0.0f32; fp];
            plan.conv_sample(tier, inputs[i].data(), &mut res, &mut scratch);
            Tensor::from_vec(res, [f, oh, ow])
        })
        .into_iter()
        .collect()
    } else {
        let mut scratch = ConvScratch::default();
        inputs
            .iter()
            .map(|x| {
                let mut res = vec![0.0f32; fp];
                plan.conv_sample(tier, x.data(), &mut res, &mut scratch);
                Tensor::from_vec(res, [f, oh, ow])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    fn binarize(t: &Tensor) -> Tensor {
        t.map(|x| if x > 0.0 { 1.0 } else { -1.0 })
    }

    fn random_signs(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = rng_from_seed(seed);
        Tensor::from_fn(dims.to_vec(), |_| if rng.gen::<f32>() > 0.5 { 1.0 } else { -1.0 })
    }

    #[test]
    fn pack_get_set_round_trip() {
        let t = random_signs(&[3, 70], 1); // spans a word boundary
        let m = BitMatrix::pack(&t).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 70);
        assert_eq!(m.words_per_row(), 2);
        for r in 0..3 {
            for c in 0..70 {
                assert_eq!(m.get(r, c), t.get(&[r, c]).unwrap() > 0.0);
            }
        }
        assert_eq!(m.unpack(), t);
        let mut m2 = m.clone();
        m2.set(1, 65, !m.get(1, 65));
        assert_ne!(m2, m);
        m2.set(1, 65, m.get(1, 65));
        assert_eq!(m2, m);
    }

    #[test]
    fn pack_rejects_non_rank2() {
        assert!(BitMatrix::pack(&Tensor::ones([4])).is_err());
    }

    #[test]
    fn zero_packs_as_negative_one() {
        let t = Tensor::from_vec(vec![0.0, -0.0, 1.0, -1.0], [1, 4]).unwrap();
        let m = BitMatrix::pack(&t).unwrap();
        assert!(!m.get(0, 0));
        assert!(!m.get(0, 1));
        assert!(m.get(0, 2));
        assert!(!m.get(0, 3));
    }

    #[test]
    fn xnor_matmul_matches_float_gemm_exactly() {
        // k = 100 crosses a word boundary, exercising pad bits.
        let x = random_signs(&[7, 100], 2);
        let w = random_signs(&[5, 100], 3);
        let bits = binary_matmul(&x, &w).unwrap();
        let float = x.matmul(&w.transpose().unwrap()).unwrap();
        assert_eq!(bits, float, "XNOR path must be bit-identical to f32 on ±1 operands");
    }

    #[test]
    fn xnor_matmul_known_values() {
        // [1,1,-1] · [1,1,1] = 1, [1,1,-1] · [1,-1,-1] = 1 etc.
        let a = Tensor::from_vec(vec![1.0, 1.0, -1.0], [1, 3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0, -1.0, -1.0], [2, 3]).unwrap();
        let out = binary_matmul(&a, &b).unwrap();
        assert_eq!(out.data(), &[1.0, 1.0]);
    }

    #[test]
    fn xnor_matmul_rejects_width_mismatch() {
        let a = BitMatrix::zeros(2, 8);
        let b = BitMatrix::zeros(2, 9);
        assert!(a.xnor_matmul(&b).is_err());
        assert!(a.xnor_matmul_masked(&b, &b).is_err());
    }

    #[test]
    fn masked_gemm_zeroes_invalid_taps() {
        // One row of 4 taps, mask keeps only the first two: the dot product
        // counts just those, as if the rest were zeros in an f32 product.
        let a =
            BitMatrix::pack(&Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], [1, 4]).unwrap()).unwrap();
        let b =
            BitMatrix::pack(&Tensor::from_vec(vec![1.0, -1.0, 1.0, 1.0], [1, 4]).unwrap()).unwrap();
        let mut mask = BitMatrix::zeros(1, 4);
        mask.set(0, 0, true);
        mask.set(0, 1, true);
        let out = a.xnor_matmul_masked(&b, &mask).unwrap();
        // valid = 2, diffs within mask = 1 -> 2 - 2*1 = 0.
        assert_eq!(out.data(), &[0.0]);
    }

    #[test]
    fn binary_conv2d_matches_float_conv_exactly() {
        // Paper geometries with padding: the masked kernel must reproduce
        // the zero-padded f32 convolution bit for bit.
        for (dims, fdims, spec) in [
            ([2, 3, 8, 8], [4, 3, 3, 3], Conv2dSpec::paper_conv()),
            ([1, 4, 16, 16], [6, 4, 3, 3], Conv2dSpec::paper_pool()),
            ([3, 2, 5, 5], [2, 2, 1, 1], Conv2dSpec::new(1, 1, 0)),
        ] {
            let x = random_signs(&dims, 7);
            let wf = Tensor::from_fn(fdims.to_vec(), |i| ((i * 29) % 17) as f32 / 8.0 - 1.0);
            let expect = conv2d(&x, &binarize(&wf), &spec).unwrap();
            let got = binary_conv2d(&x, &wf, &spec).unwrap();
            assert_eq!(got, expect, "spec {spec:?}");
        }
    }

    #[test]
    fn binary_conv2d_matches_float_on_wide_input() {
        // w = 70 > 64 words forces the general (non-planar) patch packer.
        let spec = Conv2dSpec::paper_conv();
        let x = random_signs(&[1, 2, 3, 70], 13);
        let wf = Tensor::from_fn(vec![3, 2, 3, 3], |i| ((i * 31) % 13) as f32 / 6.0 - 1.0);
        let expect = conv2d(&x, &binarize(&wf), &spec).unwrap();
        let got = binary_conv2d(&x, &wf, &spec).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn bit_im2col_agrees_with_masked_float_lowering() {
        let spec = Conv2dSpec::paper_conv();
        let x = random_signs(&[2, 2, 4, 4], 11);
        let (patches, mask) = bit_im2col(&x, &spec).unwrap();
        assert_eq!(patches.len(), 2);
        let cols = crate::conv::im2col(&x, &spec).unwrap(); // (n, kk, pixels)
        let kk = 2 * 3 * 3;
        for (b, p) in patches.iter().enumerate() {
            for pix in 0..16 {
                for tap in 0..kk {
                    let v = cols.get(&[b, tap, pix]).unwrap();
                    if mask.get(pix, tap) {
                        assert_eq!(p.get(pix, tap), v > 0.0);
                    } else {
                        assert_eq!(v, 0.0, "masked tap must be a padding zero");
                    }
                }
            }
        }
    }

    #[test]
    fn is_sign_tensor_detects_non_signs() {
        assert!(is_sign_tensor(&random_signs(&[3, 3], 5)));
        assert!(!is_sign_tensor(&Tensor::zeros([2])));
        assert!(!is_sign_tensor(&Tensor::from_vec(vec![1.0, 0.5], [2]).unwrap()));
        assert!(is_sign_tensor(&Tensor::from_vec(vec![], [0]).unwrap()));
    }
}
