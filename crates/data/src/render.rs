//! Procedural renderer for the synthetic multi-view multi-camera dataset.
//!
//! The original MVMC dataset (paper §IV-B) is 32×32 RGB crops of three
//! object classes — car, bus, person — seen from six cameras at different
//! orientations, with the object absent from some views (an all-grey image).
//! The download link in the paper is dead, so we synthesize an equivalent:
//! each class has a distinctive silhouette, each camera has a fixed
//! viewpoint transform (scale, horizontal shear, brightness) plus per-sample
//! jitter, occlusion and sensor noise. What matters for reproducing the
//! paper's findings is preserved: views of the same sample correlate,
//! cameras differ widely in informativeness, absent objects yield blank
//! frames, and fusing six views is far more informative than any single
//! view.

use ddnn_tensor::Tensor;
use rand::Rng;

/// Image edge length in pixels (the paper resizes all crops to 32×32).
pub const IMAGE_SIZE: usize = 32;
/// Number of color channels.
pub const CHANNELS: usize = 3;
/// Grey level used for "object not present" frames.
pub const BLANK_GREY: f32 = 0.5;

/// The three MVMC object classes, with the paper's label encoding
/// (car = 0, bus = 1, person = 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectClass {
    /// A car: wide low body with wheels.
    Car,
    /// A bus: large boxy body with a window band.
    Bus,
    /// A person: thin vertical figure with a head.
    Person,
}

impl ObjectClass {
    /// All classes in label order.
    pub const ALL: [ObjectClass; 3] = [ObjectClass::Car, ObjectClass::Bus, ObjectClass::Person];

    /// The paper's integer label (car = 0, bus = 1, person = 2).
    pub fn label(self) -> usize {
        match self {
            ObjectClass::Car => 0,
            ObjectClass::Bus => 1,
            ObjectClass::Person => 2,
        }
    }

    /// Class from an integer label.
    ///
    /// # Panics
    ///
    /// Panics if `label > 2`.
    pub fn from_label(label: usize) -> Self {
        match label {
            0 => ObjectClass::Car,
            1 => ObjectClass::Bus,
            2 => ObjectClass::Person,
            _ => panic!("invalid MVMC label {label}; labels are 0..=2"),
        }
    }

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            ObjectClass::Car => "car",
            ObjectClass::Bus => "bus",
            ObjectClass::Person => "person",
        }
    }
}

impl std::fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A camera's fixed viewpoint: how this device sees every sample.
///
/// These parameters model the geographic diversity of the six MVMC cameras:
/// a frontal, close, well-lit camera produces much more informative crops
/// than a distant, oblique, noisy one — which is what creates the wide
/// spread of per-device individual accuracies in Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewpoint {
    /// Apparent object scale in this view (1.0 = nominal).
    pub scale: f32,
    /// Horizontal shear simulating an oblique viewing angle (pixels of
    /// lateral shift per row away from the object center).
    pub shear: f32,
    /// Brightness multiplier of this camera.
    pub brightness: f32,
    /// Std-dev of additive Gaussian sensor noise.
    pub noise_std: f32,
    /// Probability that a vertical occluder bar covers part of the object.
    pub occlusion_prob: f32,
}

/// Per-sample randomness shared by no other sample: where the object sits,
/// its pose jitter and color.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectInstance {
    /// Object class.
    pub class: ObjectClass,
    /// Horizontal center in `[0.3, 0.7]` of the frame.
    pub cx: f32,
    /// Vertical center in `[0.4, 0.7]` of the frame.
    pub cy: f32,
    /// Size jitter multiplier in `[0.85, 1.15]`.
    pub size_jitter: f32,
    /// Base body color (RGB).
    pub color: [f32; 3],
}

impl ObjectInstance {
    /// Samples a fresh object instance of the given class.
    pub fn sample(class: ObjectClass, rng: &mut impl Rng) -> Self {
        let color = match class {
            // Cars: saturated varied hues.
            ObjectClass::Car => {
                [rng.gen_range(0.2..1.0), rng.gen_range(0.1..0.8), rng.gen_range(0.1..0.9)]
            }
            // Buses: warm yellows/reds (transit liveries).
            ObjectClass::Bus => {
                [rng.gen_range(0.7..1.0), rng.gen_range(0.4..0.9), rng.gen_range(0.0..0.3)]
            }
            // People: darker clothing tones.
            ObjectClass::Person => {
                [rng.gen_range(0.1..0.5), rng.gen_range(0.1..0.5), rng.gen_range(0.2..0.6)]
            }
        };
        ObjectInstance {
            class,
            cx: rng.gen_range(0.3..0.7),
            cy: rng.gen_range(0.4..0.7),
            size_jitter: rng.gen_range(0.85..1.15),
            color,
        }
    }
}

/// Returns a blank ("object not present") frame: uniform grey.
pub fn blank_frame() -> Tensor {
    Tensor::full([CHANNELS, IMAGE_SIZE, IMAGE_SIZE], BLANK_GREY)
}

/// Whether a frame is (close to) the blank grey frame.
pub fn is_blank(frame: &Tensor) -> bool {
    frame.data().iter().all(|&x| (x - BLANK_GREY).abs() < 1e-6)
}

fn put(img: &mut [f32], x: i32, y: i32, color: [f32; 3], brightness: f32) {
    if x < 0 || y < 0 || x >= IMAGE_SIZE as i32 || y >= IMAGE_SIZE as i32 {
        return;
    }
    let hw = IMAGE_SIZE * IMAGE_SIZE;
    let off = y as usize * IMAGE_SIZE + x as usize;
    for c in 0..CHANNELS {
        img[c * hw + off] = (color[c] * brightness).clamp(0.0, 1.0);
    }
}

#[allow(clippy::too_many_arguments)]
fn fill_rect(
    img: &mut [f32],
    x0: f32,
    y0: f32,
    x1: f32,
    y1: f32,
    shear: f32,
    cy: f32,
    color: [f32; 3],
    brightness: f32,
) {
    let ys = y0.floor() as i32;
    let ye = y1.ceil() as i32;
    for y in ys..ye {
        let dy = y as f32 - cy;
        let shift = shear * dy;
        for x in (x0 + shift).floor() as i32..(x1 + shift).ceil() as i32 {
            put(img, x, y, color, brightness);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn fill_ellipse(
    img: &mut [f32],
    cx: f32,
    cy: f32,
    rx: f32,
    ry: f32,
    shear: f32,
    scy: f32,
    color: [f32; 3],
    brightness: f32,
) {
    for y in (cy - ry).floor() as i32..(cy + ry).ceil() as i32 {
        let dy = (y as f32 - cy) / ry;
        if dy.abs() > 1.0 {
            continue;
        }
        let half = rx * (1.0 - dy * dy).sqrt();
        let shift = shear * (y as f32 - scy);
        for x in (cx - half + shift).floor() as i32..(cx + half + shift).ceil() as i32 {
            put(img, x, y, color, brightness);
        }
    }
}

/// Renders one view of an object instance through a camera viewpoint.
///
/// Deterministic given the instance, viewpoint and RNG state; the RNG
/// drives per-view noise, background clutter and occlusion.
pub fn render_view(obj: &ObjectInstance, view: &Viewpoint, rng: &mut impl Rng) -> Tensor {
    let n = IMAGE_SIZE as f32;
    let hw = IMAGE_SIZE * IMAGE_SIZE;
    let mut img = vec![0.0f32; CHANNELS * hw];

    // Background: sky-to-ground gradient with slight per-camera brightness.
    let sky = [0.55, 0.65, 0.75];
    let ground = [0.35, 0.33, 0.30];
    for y in 0..IMAGE_SIZE {
        let t = y as f32 / n;
        for x in 0..IMAGE_SIZE {
            for c in 0..CHANNELS {
                img[c * hw + y * IMAGE_SIZE + x] =
                    ((sky[c] * (1.0 - t) + ground[c] * t) * view.brightness).clamp(0.0, 1.0);
            }
        }
    }

    let cx = obj.cx * n;
    let cy = obj.cy * n;
    let s = view.scale * obj.size_jitter;
    let b = view.brightness;
    let shear = view.shear;
    let dark = [0.08, 0.08, 0.1];
    let window = [0.75, 0.85, 0.95];

    match obj.class {
        ObjectClass::Car => {
            // Low wide body, cabin on top, two wheels below.
            let w = 11.0 * s;
            let h = 4.0 * s;
            fill_rect(&mut img, cx - w, cy - h, cx + w, cy + h, shear, cy, obj.color, b);
            fill_rect(
                &mut img,
                cx - w * 0.5,
                cy - h - 3.5 * s,
                cx + w * 0.45,
                cy - h,
                shear,
                cy,
                obj.color,
                b * 0.9,
            );
            // Windshield hint.
            fill_rect(
                &mut img,
                cx - w * 0.35,
                cy - h - 2.6 * s,
                cx + w * 0.3,
                cy - h - 0.6 * s,
                shear,
                cy,
                window,
                b,
            );
            fill_ellipse(
                &mut img,
                cx - w * 0.55,
                cy + h + 1.0,
                2.4 * s,
                2.4 * s,
                shear,
                cy,
                dark,
                b,
            );
            fill_ellipse(
                &mut img,
                cx + w * 0.55,
                cy + h + 1.0,
                2.4 * s,
                2.4 * s,
                shear,
                cy,
                dark,
                b,
            );
        }
        ObjectClass::Bus => {
            // Tall boxy body filling much of the frame, window band, wheels.
            let w = 12.0 * s;
            let h = 9.0 * s;
            fill_rect(&mut img, cx - w, cy - h, cx + w, cy + h, shear, cy, obj.color, b);
            // Window band across the upper body.
            let wy0 = cy - h * 0.65;
            let wy1 = cy - h * 0.15;
            let mut wx = cx - w * 0.85;
            while wx < cx + w * 0.8 {
                fill_rect(&mut img, wx, wy0, wx + 2.6 * s, wy1, shear, cy, window, b);
                wx += 4.2 * s;
            }
            fill_ellipse(&mut img, cx - w * 0.6, cy + h, 2.2 * s, 2.2 * s, shear, cy, dark, b);
            fill_ellipse(&mut img, cx + w * 0.6, cy + h, 2.2 * s, 2.2 * s, shear, cy, dark, b);
        }
        ObjectClass::Person => {
            // Thin vertical torso + legs + head.
            let torso_h = 7.0 * s;
            let torso_w = 2.6 * s;
            fill_rect(
                &mut img,
                cx - torso_w,
                cy - torso_h,
                cx + torso_w,
                cy + torso_h * 0.2,
                shear,
                cy,
                obj.color,
                b,
            );
            // Legs.
            fill_rect(
                &mut img,
                cx - torso_w * 0.9,
                cy + torso_h * 0.2,
                cx - torso_w * 0.15,
                cy + torso_h * 1.3,
                shear,
                cy,
                dark,
                b,
            );
            fill_rect(
                &mut img,
                cx + torso_w * 0.15,
                cy + torso_h * 0.2,
                cx + torso_w * 0.9,
                cy + torso_h * 1.3,
                shear,
                cy,
                dark,
                b,
            );
            // Head: skin tone.
            fill_ellipse(
                &mut img,
                cx,
                cy - torso_h - 2.4 * s,
                2.0 * s,
                2.3 * s,
                shear,
                cy,
                [0.85, 0.65, 0.5],
                b,
            );
        }
    }

    // Occluder: a vertical bar (pole/tree) in front of the object.
    if rng.gen::<f32>() < view.occlusion_prob {
        let bar_x = cx + rng.gen_range(-6.0..6.0);
        let bar_w = rng.gen_range(2.0..5.0);
        fill_rect(&mut img, bar_x, 0.0, bar_x + bar_w, n, 0.0, cy, [0.2, 0.18, 0.15], 1.0);
    }

    // Sensor noise.
    if view.noise_std > 0.0 {
        for v in &mut img {
            *v = (*v + ddnn_tensor::rng::sample_standard_normal(rng) * view.noise_std)
                .clamp(0.0, 1.0);
        }
    }

    Tensor::from_vec(img, [CHANNELS, IMAGE_SIZE, IMAGE_SIZE])
        .expect("rendered buffer matches image shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddnn_tensor::rng::rng_from_seed;

    fn clean_view() -> Viewpoint {
        Viewpoint { scale: 1.0, shear: 0.0, brightness: 1.0, noise_std: 0.0, occlusion_prob: 0.0 }
    }

    #[test]
    fn labels_round_trip() {
        for class in ObjectClass::ALL {
            assert_eq!(ObjectClass::from_label(class.label()), class);
        }
        assert_eq!(ObjectClass::Car.label(), 0);
        assert_eq!(ObjectClass::Bus.label(), 1);
        assert_eq!(ObjectClass::Person.label(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid MVMC label")]
    fn bad_label_panics() {
        ObjectClass::from_label(3);
    }

    #[test]
    fn blank_frame_is_blank() {
        let f = blank_frame();
        assert_eq!(f.dims(), &[3, 32, 32]);
        assert!(is_blank(&f));
        assert!(!is_blank(&Tensor::zeros([3, 32, 32])));
    }

    #[test]
    fn rendered_views_are_valid_images() {
        let mut rng = rng_from_seed(0);
        for class in ObjectClass::ALL {
            let obj = ObjectInstance::sample(class, &mut rng);
            let img = render_view(&obj, &clean_view(), &mut rng);
            assert_eq!(img.dims(), &[3, 32, 32]);
            assert!(img.min().unwrap() >= 0.0);
            assert!(img.max().unwrap() <= 1.0);
            assert!(!is_blank(&img));
        }
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean absolute pixel difference between class renders of the same
        // pose should be substantial — the classifier's signal.
        let mut rng = rng_from_seed(1);
        let view = clean_view();
        let mut base = ObjectInstance::sample(ObjectClass::Car, &mut rng);
        base.cx = 0.5;
        base.cy = 0.55;
        base.size_jitter = 1.0;
        let mut imgs = Vec::new();
        for class in ObjectClass::ALL {
            let mut o = base;
            o.class = class;
            imgs.push(render_view(&o, &view, &mut rng));
        }
        for i in 0..3 {
            for j in (i + 1)..3 {
                let d = imgs[i].sub(&imgs[j]).unwrap().map(f32::abs).mean();
                assert!(d > 0.01, "classes {i} and {j} look identical (diff {d})");
            }
        }
    }

    #[test]
    fn noise_perturbs_but_stays_in_range() {
        let mut rng = rng_from_seed(2);
        let obj = ObjectInstance::sample(ObjectClass::Bus, &mut rng);
        let noisy = Viewpoint { noise_std: 0.3, ..clean_view() };
        let img = render_view(&obj, &noisy, &mut rng);
        assert!(img.min().unwrap() >= 0.0);
        assert!(img.max().unwrap() <= 1.0);
    }

    #[test]
    fn same_instance_same_rng_is_deterministic() {
        let mut rng_a = rng_from_seed(3);
        let mut rng_b = rng_from_seed(3);
        let obj_a = ObjectInstance::sample(ObjectClass::Person, &mut rng_a);
        let obj_b = ObjectInstance::sample(ObjectClass::Person, &mut rng_b);
        assert_eq!(obj_a, obj_b);
        let img_a = render_view(&obj_a, &clean_view(), &mut rng_a);
        let img_b = render_view(&obj_b, &clean_view(), &mut rng_b);
        assert_eq!(img_a, img_b);
    }

    #[test]
    fn brightness_darkens_image() {
        let mut rng = rng_from_seed(4);
        let obj = ObjectInstance::sample(ObjectClass::Car, &mut rng);
        let bright = render_view(&obj, &clean_view(), &mut rng_from_seed(9));
        let dim_view = Viewpoint { brightness: 0.5, ..clean_view() };
        let dim = render_view(&obj, &dim_view, &mut rng_from_seed(9));
        assert!(dim.mean() < bright.mean());
    }
}
