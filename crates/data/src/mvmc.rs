//! The synthetic multi-view multi-camera (MVMC) dataset.
//!
//! Reproduces the structure of the dataset used in the paper's evaluation
//! (§IV-B): six cameras observe the same scene; each *sample* is one object
//! (car, bus or person) captured simultaneously by the subset of cameras it
//! is visible to; cameras where the object is absent contribute a blank
//! grey frame. The paper's split of 680 training and 171 test samples, the
//! heavy per-device class imbalance (Fig. 6) and the wide spread of
//! per-device informativeness (Fig. 8 "Individual" curve) are all modeled.

use crate::render::{
    blank_frame, render_view, ObjectClass, ObjectInstance, Viewpoint, CHANNELS, IMAGE_SIZE,
};
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::{Result, Tensor};
use rand::Rng;

/// Number of end devices (cameras) in the paper's evaluation.
pub const NUM_DEVICES: usize = 6;
/// Number of object classes.
pub const NUM_CLASSES: usize = 3;
/// Paper's training-set size.
pub const TRAIN_SAMPLES: usize = 680;
/// Paper's test-set size.
pub const TEST_SAMPLES: usize = 171;

/// A camera/device profile: viewpoint plus how often objects are visible
/// to it.
///
/// The six defaults are calibrated so the per-device *individual* accuracy
/// spread matches the paper's Fig. 8: device 2 worst (rarely sees the
/// object, oblique and noisy) through device 6 best (frontal, close,
/// clean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Base probability that an object is visible to this camera.
    pub presence: f32,
    /// The camera's viewpoint transform.
    pub viewpoint: Viewpoint,
}

impl DeviceProfile {
    /// The six calibrated camera profiles, in device order 1..=6.
    pub fn paper_devices() -> Vec<DeviceProfile> {
        // (presence, scale, shear, brightness, noise, occlusion)
        let raw: [(f32, f32, f32, f32, f32, f32); NUM_DEVICES] = [
            (0.55, 0.80, 0.35, 0.75, 0.22, 0.35), // device 1: distant, dim
            (0.40, 0.70, 0.50, 0.60, 0.28, 0.45), // device 2: worst view
            (0.70, 0.95, 0.20, 0.90, 0.12, 0.20), // device 3
            (0.62, 0.85, 0.30, 0.80, 0.18, 0.30), // device 4
            (0.78, 0.95, 0.15, 0.90, 0.16, 0.22), // device 5
            (0.88, 1.00, 0.08, 0.92, 0.14, 0.18), // device 6: frontal, clear
        ];
        raw.iter()
            .map(|&(presence, scale, shear, brightness, noise_std, occlusion_prob)| DeviceProfile {
                presence,
                viewpoint: Viewpoint { scale, shear, brightness, noise_std, occlusion_prob },
            })
            .collect()
    }
}

/// One multi-view sample: the views captured by every device (blank frames
/// where the object is absent), presence flags, and the class label.
#[derive(Debug, Clone)]
pub struct MvmcSample {
    /// One `(3, 32, 32)` view per device.
    pub views: Vec<Tensor>,
    /// Whether the object is actually visible to each device (paper label
    /// −1 ↦ `false`).
    pub present: Vec<bool>,
    /// Class label: car = 0, bus = 1, person = 2.
    pub label: usize,
}

impl MvmcSample {
    /// The object class of this sample.
    pub fn class(&self) -> ObjectClass {
        ObjectClass::from_label(self.label)
    }

    /// Number of devices that can see the object.
    pub fn visible_count(&self) -> usize {
        self.present.iter().filter(|&&p| p).count()
    }
}

/// Configuration for dataset synthesis.
#[derive(Debug, Clone)]
pub struct MvmcConfig {
    /// Number of training samples (paper: 680).
    pub train_samples: usize,
    /// Number of test samples (paper: 171).
    pub test_samples: usize,
    /// RNG seed; two datasets with equal configs are identical.
    pub seed: u64,
    /// Camera profiles; their count sets the number of devices.
    pub devices: Vec<DeviceProfile>,
    /// Class sampling probabilities `[car, bus, person]`; the paper's
    /// dataset is imbalanced towards cars.
    pub class_probs: [f32; NUM_CLASSES],
}

impl Default for MvmcConfig {
    fn default() -> Self {
        MvmcConfig {
            train_samples: TRAIN_SAMPLES,
            test_samples: TEST_SAMPLES,
            seed: 7,
            devices: DeviceProfile::paper_devices(),
            class_probs: [0.45, 0.25, 0.30],
        }
    }
}

impl MvmcConfig {
    /// Paper-shaped configuration (680/171 split, six calibrated cameras).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Smaller configuration for fast tests.
    pub fn tiny(train: usize, test: usize, seed: u64) -> Self {
        MvmcConfig { train_samples: train, test_samples: test, seed, ..Self::default() }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }
}

/// A generated MVMC dataset with train/test splits.
#[derive(Debug, Clone)]
pub struct MvmcDataset {
    /// Training samples.
    pub train: Vec<MvmcSample>,
    /// Held-out test samples.
    pub test: Vec<MvmcSample>,
    config: MvmcConfig,
}

/// How visible each class is relative to the base presence probability: a
/// bus is large (seen by more cameras), a person small.
fn class_visibility(class: ObjectClass) -> f32 {
    match class {
        ObjectClass::Car => 1.0,
        ObjectClass::Bus => 1.15,
        ObjectClass::Person => 0.85,
    }
}

fn sample_class(probs: &[f32; NUM_CLASSES], rng: &mut impl Rng) -> ObjectClass {
    let r: f32 = rng.gen::<f32>() * probs.iter().sum::<f32>();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if r < acc {
            return ObjectClass::from_label(i);
        }
    }
    ObjectClass::Person
}

fn generate_sample(config: &MvmcConfig, rng: &mut impl Rng) -> MvmcSample {
    let class = sample_class(&config.class_probs, rng);
    let obj = ObjectInstance::sample(class, rng);
    let vis = class_visibility(class);
    // Roll presence; every sample must be visible somewhere, so re-roll a
    // fully-absent draw (the real dataset only contains annotated objects).
    let mut present: Vec<bool> = Vec::new();
    for _ in 0..16 {
        present = config
            .devices
            .iter()
            .map(|d| rng.gen::<f32>() < (d.presence * vis).min(0.98))
            .collect();
        if present.iter().any(|&p| p) {
            break;
        }
    }
    if !present.iter().any(|&p| p) {
        // Force the most reliable camera after pathological re-rolls.
        let best = config
            .devices
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.presence.total_cmp(&b.1.presence))
            .map(|(i, _)| i)
            .unwrap_or(0);
        present[best] = true;
    }
    let views = config
        .devices
        .iter()
        .zip(&present)
        .map(|(d, &p)| if p { render_view(&obj, &d.viewpoint, rng) } else { blank_frame() })
        .collect();
    MvmcSample { views, present, label: class.label() }
}

impl MvmcDataset {
    /// Generates a dataset from a configuration. Deterministic in the seed.
    pub fn generate(config: MvmcConfig) -> Self {
        let mut rng = rng_from_seed(config.seed);
        let train = (0..config.train_samples).map(|_| generate_sample(&config, &mut rng)).collect();
        let test = (0..config.test_samples).map(|_| generate_sample(&config, &mut rng)).collect();
        MvmcDataset { train, test, config }
    }

    /// Generates the paper-shaped dataset (680 train / 171 test, 6 cameras).
    pub fn paper() -> Self {
        Self::generate(MvmcConfig::paper())
    }

    /// The configuration this dataset was generated from.
    pub fn config(&self) -> &MvmcConfig {
        &self.config
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.config.num_devices()
    }
}

/// Stacks the views of one device across samples into an `(n, 3, 32, 32)`
/// batch tensor.
///
/// # Errors
///
/// Returns an error if `device` is out of range for the samples.
pub fn device_batch(samples: &[MvmcSample], device: usize) -> Result<Tensor> {
    let views: Vec<Tensor> = samples
        .iter()
        .map(|s| {
            s.views.get(device).cloned().ok_or(ddnn_tensor::TensorError::IndexOutOfBounds {
                index: vec![device],
                shape: vec![s.views.len()],
            })
        })
        .collect::<Result<_>>()?;
    Tensor::stack(&views)
}

/// Stacks all devices: one `(n, 3, 32, 32)` batch per device.
///
/// # Errors
///
/// Returns an error if samples disagree on device count.
pub fn all_device_batches(samples: &[MvmcSample], num_devices: usize) -> Result<Vec<Tensor>> {
    (0..num_devices).map(|d| device_batch(samples, d)).collect()
}

/// The labels of a sample slice.
pub fn labels(samples: &[MvmcSample]) -> Vec<usize> {
    samples.iter().map(|s| s.label).collect()
}

/// Per-device sample statistics — the data behind the paper's Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStats {
    /// Number of samples of each class visible to this device.
    pub per_class: [usize; NUM_CLASSES],
    /// Number of samples where the object is not in this device's frame.
    pub not_present: usize,
}

impl DeviceStats {
    /// Total samples counted (visible + not present).
    pub fn total(&self) -> usize {
        self.per_class.iter().sum::<usize>() + self.not_present
    }
}

/// Computes per-device class distributions over a sample slice (Fig. 6).
#[allow(clippy::needless_range_loop)] // device index addresses two parallel arrays
pub fn device_stats(samples: &[MvmcSample], num_devices: usize) -> Vec<DeviceStats> {
    let mut stats = vec![DeviceStats::default(); num_devices];
    for s in samples {
        for d in 0..num_devices.min(s.present.len()) {
            if s.present[d] {
                stats[d].per_class[s.label] += 1;
            } else {
                stats[d].not_present += 1;
            }
        }
    }
    stats
}

/// Size in bytes of one raw view — what the cloud-only baseline transmits
/// per sample per device (paper §IV-H: 32·32·3 = 3072 bytes).
pub const RAW_VIEW_BYTES: usize = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MvmcDataset {
        MvmcDataset::generate(MvmcConfig::tiny(40, 10, 11))
    }

    #[test]
    fn split_sizes_match_config() {
        let ds = tiny();
        assert_eq!(ds.train.len(), 40);
        assert_eq!(ds.test.len(), 10);
        assert_eq!(ds.num_devices(), 6);
    }

    #[test]
    fn paper_config_matches_paper_sizes() {
        let c = MvmcConfig::paper();
        assert_eq!(c.train_samples, 680);
        assert_eq!(c.test_samples, 171);
        assert_eq!(c.num_devices(), 6);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = MvmcDataset::generate(MvmcConfig::tiny(10, 5, 42));
        let b = MvmcDataset::generate(MvmcConfig::tiny(10, 5, 42));
        for (sa, sb) in a.train.iter().zip(&b.train) {
            assert_eq!(sa.label, sb.label);
            assert_eq!(sa.present, sb.present);
            assert_eq!(sa.views[0], sb.views[0]);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = MvmcDataset::generate(MvmcConfig::tiny(10, 5, 1));
        let b = MvmcDataset::generate(MvmcConfig::tiny(10, 5, 2));
        let same = a.train.iter().zip(&b.train).all(|(x, y)| x.label == y.label);
        assert!(!same || a.train[0].views[0] != b.train[0].views[0]);
    }

    #[test]
    fn every_sample_visible_somewhere() {
        let ds = tiny();
        for s in ds.train.iter().chain(&ds.test) {
            assert!(s.visible_count() >= 1);
        }
    }

    #[test]
    fn absent_views_are_blank_and_present_views_are_not() {
        let ds = tiny();
        for s in &ds.train {
            for (v, &p) in s.views.iter().zip(&s.present) {
                assert_eq!(crate::render::is_blank(v), !p);
            }
        }
    }

    #[test]
    fn presence_ordering_follows_profiles() {
        // Device 6 (index 5) must see far more objects than device 2
        // (index 1) — the driver of the Fig. 8 individual-accuracy spread.
        let ds = MvmcDataset::generate(MvmcConfig::tiny(300, 0, 3));
        let stats = device_stats(&ds.train, 6);
        let visible =
            |d: usize| stats[d].per_class.iter().sum::<usize>() as f32 / ds.train.len() as f32;
        assert!(visible(5) > 0.85, "device 6 visibility {}", visible(5));
        assert!(visible(1) < 0.60, "device 2 visibility {}", visible(1));
        assert!(visible(5) > visible(1) + 0.3);
    }

    #[test]
    fn class_mix_is_imbalanced_towards_cars() {
        let ds = MvmcDataset::generate(MvmcConfig::tiny(600, 0, 5));
        let mut counts = [0usize; 3];
        for s in &ds.train {
            counts[s.label] += 1;
        }
        assert!(counts[0] > counts[1], "cars {} vs buses {}", counts[0], counts[1]);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn device_batch_shapes() {
        let ds = tiny();
        let b = device_batch(&ds.train, 0).unwrap();
        assert_eq!(b.dims(), &[40, 3, 32, 32]);
        let all = all_device_batches(&ds.train, 6).unwrap();
        assert_eq!(all.len(), 6);
        assert!(device_batch(&ds.train, 6).is_err());
    }

    #[test]
    fn labels_align_with_samples() {
        let ds = tiny();
        let l = labels(&ds.train);
        assert_eq!(l.len(), 40);
        assert!(l.iter().all(|&x| x < NUM_CLASSES));
        assert_eq!(l[3], ds.train[3].label);
    }

    #[test]
    fn stats_total_is_sample_count() {
        let ds = tiny();
        for st in device_stats(&ds.train, 6) {
            assert_eq!(st.total(), 40);
        }
    }

    #[test]
    fn raw_view_bytes_matches_paper() {
        assert_eq!(RAW_VIEW_BYTES, 3072);
    }
}
