//! # ddnn-data
//!
//! Synthetic multi-view multi-camera (MVMC) dataset for DDNN-RS.
//!
//! The paper evaluates DDNN on 32x32 RGB crops from six cameras observing
//! the same area (Roig et al. 2011); the processed `.npz` it links to is
//! no longer downloadable, so this crate *synthesizes* an equivalent
//! dataset (see `DESIGN.md` section 3 for the substitution argument). The
//! properties DDNN exploits are preserved:
//!
//! * six cameras with fixed, very different viewpoints (scale, angle,
//!   lighting, noise, occlusion) observing the *same* object per sample;
//! * three imbalanced classes (car/bus/person);
//! * objects absent from many views — a blank grey frame, the paper's
//!   label -1;
//! * the paper's 680-train / 171-test split.
//!
//! ```
//! use ddnn_data::{MvmcDataset, MvmcConfig, device_batch, labels};
//!
//! # fn main() -> Result<(), ddnn_tensor::TensorError> {
//! let ds = MvmcDataset::generate(MvmcConfig::tiny(32, 8, 42));
//! let device0 = device_batch(&ds.train, 0)?; // (32, 3, 32, 32)
//! assert_eq!(device0.dims(), &[32, 3, 32, 32]);
//! assert_eq!(labels(&ds.train).len(), 32);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod mvmc;
pub mod render;

pub use mvmc::{
    all_device_batches, device_batch, device_stats, labels, DeviceProfile, DeviceStats, MvmcConfig,
    MvmcDataset, MvmcSample, NUM_CLASSES, NUM_DEVICES, RAW_VIEW_BYTES, TEST_SAMPLES, TRAIN_SAMPLES,
};
pub use render::{blank_frame, is_blank, ObjectClass, Viewpoint, CHANNELS, IMAGE_SIZE};
