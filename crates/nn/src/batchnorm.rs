//! Batch normalization (the BN stage of the paper's fused binary blocks).
//!
//! One implementation serves both the FC block (rank-2 `(n, d)` inputs,
//! normalized per feature) and the ConvP block (rank-4 `(n, c, h, w)`
//! inputs, normalized per channel over `n·h·w`).

use crate::layer::{Layer, Mode, Param};
use ddnn_tensor::{Result, Tensor, TensorError};

/// Batch normalization layer with learnable scale (`gamma`) and shift
/// (`beta`) and exponential running statistics for inference.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    channels: usize,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    input_dims: Vec<usize>,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `channels` features/channels with the
    /// conventional momentum 0.9 and epsilon 1e-5.
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            gamma: Param::new("bn.gamma", Tensor::ones([channels])),
            beta: Param::new("bn.beta", Tensor::zeros([channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            momentum: 0.9,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Serialized parameter size in bytes: gamma, beta, running mean and
    /// running variance at 4 bytes each.
    pub fn memory_bytes(&self) -> usize {
        4 * 4 * self.channels
    }

    /// For an input of rank 2 `(n, c)` or rank 4 `(n, c, h, w)`, the
    /// per-element channel id and the per-channel group size.
    fn channel_layout(&self, dims: &[usize]) -> Result<(usize, usize)> {
        match dims {
            [_, c] if *c == self.channels => Ok((1, dims[0])),
            [n, c, h, w] if *c == self.channels => Ok((h * w, n * h * w)),
            _ => Err(TensorError::ShapeMismatch {
                lhs: dims.to_vec(),
                rhs: vec![0, self.channels],
                op: "batchnorm.forward",
            }),
        }
    }
}

impl Layer for BatchNorm {
    #[allow(clippy::needless_range_loop)] // channel-indexed accumulation is clearer
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let dims = input.dims().to_vec();
        let (inner, group) = self.channel_layout(&dims)?;
        let c = self.channels;
        let plane = c * inner; // elements per batch item
        let n = input.len() / plane;

        let (mean, var) = match mode {
            Mode::Train => {
                let mut mean = vec![0.0f32; c];
                let mut var = vec![0.0f32; c];
                for b in 0..n {
                    for ch in 0..c {
                        let base = b * plane + ch * inner;
                        for i in 0..inner {
                            mean[ch] += input.data()[base + i];
                        }
                    }
                }
                for m in &mut mean {
                    *m /= group as f32;
                }
                for b in 0..n {
                    for ch in 0..c {
                        let base = b * plane + ch * inner;
                        for i in 0..inner {
                            let d = input.data()[base + i] - mean[ch];
                            var[ch] += d * d;
                        }
                    }
                }
                for v in &mut var {
                    *v /= group as f32;
                }
                for ch in 0..c {
                    self.running_mean[ch] =
                        self.momentum * self.running_mean[ch] + (1.0 - self.momentum) * mean[ch];
                    self.running_var[ch] =
                        self.momentum * self.running_var[ch] + (1.0 - self.momentum) * var[ch];
                }
                (mean, var)
            }
            Mode::Eval => (self.running_mean.clone(), self.running_var.clone()),
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut out = vec![0.0f32; input.len()];
        let mut x_hat = vec![0.0f32; input.len()];
        let g = self.gamma.value.data();
        let be = self.beta.value.data();
        for b in 0..n {
            for ch in 0..c {
                let base = b * plane + ch * inner;
                for i in 0..inner {
                    let xh = (input.data()[base + i] - mean[ch]) * inv_std[ch];
                    x_hat[base + i] = xh;
                    out[base + i] = g[ch] * xh + be[ch];
                }
            }
        }
        if mode == Mode::Train {
            self.cache = Some(BnCache {
                x_hat: Tensor::from_vec(x_hat, dims.clone())?,
                inv_std,
                input_dims: dims.clone(),
            });
        }
        Tensor::from_vec(out, dims)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(TensorError::Empty { op: "batchnorm.backward before forward(Train)" })?;
        if grad_output.dims() != cache.input_dims.as_slice() {
            return Err(TensorError::ShapeMismatch {
                lhs: grad_output.dims().to_vec(),
                rhs: cache.input_dims.clone(),
                op: "batchnorm.backward",
            });
        }
        let (inner, group) = self.channel_layout(&cache.input_dims)?;
        let c = self.channels;
        let plane = c * inner;
        let n = grad_output.len() / plane;
        let xh = cache.x_hat.data();
        let dy = grad_output.data();

        // Per-channel sums: Σdy and Σ(dy·x̂).
        let mut sum_dy = vec![0.0f32; c];
        let mut sum_dy_xh = vec![0.0f32; c];
        for b in 0..n {
            for ch in 0..c {
                let base = b * plane + ch * inner;
                for i in 0..inner {
                    sum_dy[ch] += dy[base + i];
                    sum_dy_xh[ch] += dy[base + i] * xh[base + i];
                }
            }
        }
        self.gamma.grad.data_mut().iter_mut().zip(&sum_dy_xh).for_each(|(g, &s)| *g += s);
        self.beta.grad.data_mut().iter_mut().zip(&sum_dy).for_each(|(g, &s)| *g += s);

        let g = self.gamma.value.data();
        let m = group as f32;
        let mut dx = vec![0.0f32; grad_output.len()];
        for b in 0..n {
            for ch in 0..c {
                let base = b * plane + ch * inner;
                let k = g[ch] * cache.inv_std[ch];
                for i in 0..inner {
                    let idx = base + i;
                    dx[idx] = k * (dy[idx] - sum_dy[ch] / m - xh[idx] * sum_dy_xh[ch] / m);
                }
            }
        }
        Tensor::from_vec(dx, cache.input_dims.clone())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn describe(&self) -> String {
        format!("batchnorm({})", self.channels)
    }

    fn extra_state(&self) -> Vec<f32> {
        let mut s = self.running_mean.clone();
        s.extend_from_slice(&self.running_var);
        s
    }

    fn load_extra_state(&mut self, state: &[f32]) -> Result<()> {
        if state.len() != 2 * self.channels {
            return Err(TensorError::LengthMismatch {
                expected: 2 * self.channels,
                actual: state.len(),
            });
        }
        self.running_mean.copy_from_slice(&state[..self.channels]);
        self.running_var.copy_from_slice(&state[self.channels..]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddnn_tensor::rng::rng_from_seed;

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm::new(2);
        let mut rng = rng_from_seed(0);
        let x = Tensor::randn([64, 2], 3.0, &mut rng).shift(5.0);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Each feature column should be ~N(0,1).
        for ch in 0..2 {
            let col: Vec<f32> = (0..64).map(|i| y.data()[i * 2 + ch]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 64.0;
            let var: f32 = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean={mean}");
            assert!((var - 1.0).abs() < 1e-3, "var={var}");
        }
    }

    #[test]
    fn rank4_normalizes_per_channel() {
        let mut bn = BatchNorm::new(3);
        let mut rng = rng_from_seed(1);
        let x = Tensor::randn([4, 3, 8, 8], 2.0, &mut rng);
        let y = bn.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), x.dims());
        // Channel 0 mean over n,h,w ~ 0.
        let mut s = 0.0;
        for b in 0..4 {
            for i in 0..64 {
                s += y.data()[b * 3 * 64 + i];
            }
        }
        assert!((s / 256.0).abs() < 1e-4);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        let mut rng = rng_from_seed(2);
        // Several training batches to converge running stats.
        for _ in 0..200 {
            let x = Tensor::randn([32, 1], 2.0, &mut rng).shift(10.0);
            bn.forward(&x, Mode::Train).unwrap();
        }
        // Eval on a shifted input: normalization should use ~(10, 4).
        let x = Tensor::full([4, 1], 10.0);
        let y = bn.forward(&x, Mode::Eval).unwrap();
        assert!(y.data().iter().all(|v| v.abs() < 0.2), "{:?}", y.data());
    }

    #[test]
    fn rejects_channel_mismatch() {
        let mut bn = BatchNorm::new(4);
        assert!(bn.forward(&Tensor::ones([2, 3]), Mode::Train).is_err());
        assert!(bn.forward(&Tensor::ones([2, 3, 4, 4]), Mode::Train).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut bn = BatchNorm::new(2);
        assert!(bn.backward(&Tensor::ones([2, 2])).is_err());
    }

    #[test]
    fn gradient_check() {
        let mut rng = rng_from_seed(3);
        let mut bn = BatchNorm::new(2);
        bn.gamma.value = Tensor::from_vec(vec![1.5, 0.5], [2]).unwrap();
        bn.beta.value = Tensor::from_vec(vec![0.1, -0.2], [2]).unwrap();
        let x = Tensor::randn([5, 2], 1.0, &mut rng);
        // Loss = Σ y², so dL/dy = 2y.
        let y = bn.forward(&x, Mode::Train).unwrap();
        let gout = y.scale(2.0);
        let gin = bn.backward(&gout).unwrap();
        let eps = 1e-2;
        let loss = |bn: &mut BatchNorm, x: &Tensor| -> f32 {
            bn.forward(x, Mode::Train).unwrap().norm_sq()
        };
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            assert!(
                (num - gin.data()[idx]).abs() < 0.05,
                "dX[{idx}]: num={num} got={}",
                gin.data()[idx]
            );
        }
        // gamma/beta grads.
        let base_g = bn.gamma.value.clone();
        for idx in 0..2 {
            bn.zero_grad();
            let y = bn.forward(&x, Mode::Train).unwrap();
            bn.backward(&y.scale(2.0)).unwrap();
            let got = bn.gamma.grad.data()[idx];
            let mut gp = base_g.clone();
            gp.data_mut()[idx] += eps;
            bn.gamma.value = gp;
            let fp = loss(&mut bn, &x);
            let mut gm = base_g.clone();
            gm.data_mut()[idx] -= eps;
            bn.gamma.value = gm;
            let fm = loss(&mut bn, &x);
            bn.gamma.value = base_g.clone();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - got).abs() < 0.05, "dgamma[{idx}]: num={num} got={got}");
        }
    }

    #[test]
    fn memory_accounting() {
        assert_eq!(BatchNorm::new(4).memory_bytes(), 64);
    }
}
