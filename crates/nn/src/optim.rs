//! Optimizers: Adam (the paper's choice) and SGD (baseline).

use crate::layer::Param;

/// Gradient-descent optimizer over an ordered parameter list.
///
/// Implementations key their internal state on parameter *order*, so the
/// caller must pass the same parameter set in the same order on every step
/// (which the static DDNN graph guarantees).
pub trait Optimizer {
    /// Applies one update step using each parameter's accumulated gradient,
    /// then applies the parameter's clip range if present.
    ///
    /// # Panics
    ///
    /// Panics if the number of parameters changes between steps.
    fn step(&mut self, params: &mut [&mut Param]);
}

fn apply_clip(p: &mut Param) {
    if let Some((lo, hi)) = p.clip {
        p.value.map_in_place(|x| x.clamp(lo, hi));
    }
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate (no momentum).
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "parameter set changed between steps");
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            for ((x, &g), vi) in p.value.data_mut().iter_mut().zip(p.grad.data()).zip(v.iter_mut())
            {
                *vi = self.momentum * *vi - self.lr * g;
                *x += *vi;
            }
            apply_clip(p);
        }
    }
}

/// Adam optimizer (Kingma & Ba), configured by default with the paper's
/// hyper-parameters: α=0.001, β₁=0.9, β₂=0.999, ε=1e-8 (paper §IV-A).
#[derive(Debug)]
pub struct Adam {
    /// Step size α.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability term ε.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the paper's hyper-parameters.
    pub fn new() -> Self {
        Adam::with_lr(0.001)
    }

    /// Creates Adam with a custom learning rate (other hyper-parameters as
    /// in the paper).
    pub fn with_lr(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Adam::new()
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter set changed between steps");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for (((x, &g), mi), vi) in
                p.value.data_mut().iter_mut().zip(p.grad.data()).zip(m.iter_mut()).zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *x -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            apply_clip(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddnn_tensor::Tensor;

    fn quadratic_grad(p: &mut Param) {
        // Loss = ½‖x‖² -> grad = x.
        p.grad = p.value.clone();
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut p = Param::new("x", Tensor::from_vec(vec![1.0, -2.0], [2]).unwrap());
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.norm_sq() < 1e-6);
    }

    #[test]
    fn sgd_momentum_descends() {
        let mut p = Param::new("x", Tensor::from_vec(vec![3.0], [1]).unwrap());
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        for _ in 0..200 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.norm_sq() < 1e-4, "{:?}", p.value);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut p = Param::new("x", Tensor::from_vec(vec![5.0, -5.0], [2]).unwrap());
        let mut opt = Adam::with_lr(0.05);
        for _ in 0..2000 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.norm_sq() < 1e-4, "{:?}", p.value);
    }

    #[test]
    fn adam_paper_hyperparams() {
        let a = Adam::new();
        assert_eq!(a.lr, 0.001);
        assert_eq!(a.beta1, 0.9);
        assert_eq!(a.beta2, 0.999);
        assert_eq!(a.eps, 1e-8);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let mut p = Param::new("x", Tensor::from_vec(vec![0.0], [1]).unwrap());
        p.grad = Tensor::from_vec(vec![0.5], [1]).unwrap();
        let mut opt = Adam::with_lr(0.001);
        opt.step(&mut [&mut p]);
        assert!((p.value.data()[0] + 0.001).abs() < 1e-6);
    }

    #[test]
    fn clip_is_applied_after_step() {
        let mut p = Param::with_clip("w", Tensor::from_vec(vec![0.99], [1]).unwrap(), -1.0, 1.0);
        p.grad = Tensor::from_vec(vec![-100.0], [1]).unwrap();
        let mut opt = Sgd::new(1.0);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.data()[0], 1.0);
    }

    #[test]
    fn steps_remain_finite_with_zero_grad() {
        let mut p = Param::new("x", Tensor::ones([4]));
        let mut opt = Adam::new();
        for _ in 0..10 {
            p.zero_grad();
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.all_finite());
    }

    #[test]
    #[should_panic(expected = "parameter set changed")]
    fn changing_param_count_panics() {
        let mut p1 = Param::new("a", Tensor::ones([1]));
        let mut p2 = Param::new("b", Tensor::ones([1]));
        let mut opt = Adam::new();
        opt.step(&mut [&mut p1]);
        opt.step(&mut [&mut p1, &mut p2]);
    }
}
