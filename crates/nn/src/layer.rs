//! The [`Layer`] trait and trainable [`Param`]eters.
//!
//! DDNN-RS uses explicit-backward layers (Caffe style) rather than a tape
//! autograd: the DDNN computation graph is a small static tree (shared
//! device trunks feeding multiple exit branches), so each layer caches what
//! its own backward pass needs, and the model code sums gradients at branch
//! points. This keeps the framework small, fast and easy to verify against
//! finite differences.

use ddnn_tensor::{Result, Tensor};

/// Whether a forward pass is part of training or inference.
///
/// Batch normalization uses batch statistics under [`Mode::Train`] and
/// running statistics under [`Mode::Eval`]; binarized layers behave the same
/// in both modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: layers may use batch statistics and cache activations.
    Train,
    /// Inference: layers use frozen statistics.
    Eval,
}

/// A trainable parameter: value, accumulated gradient, and an optional
/// clipping range applied after each optimizer step.
///
/// BinaryConnect-style layers keep real-valued "master" weights clipped to
/// `[-1, 1]` (the clip range) while using their sign in the forward pass.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient accumulated by `backward` calls since the last `zero_grad`.
    pub grad: Tensor,
    /// Optional `[lo, hi]` range the optimizer clamps the value to after
    /// each step (BinaryConnect weight clipping).
    pub clip: Option<(f32, f32)>,
    /// Human-readable name for debugging and introspection.
    pub name: String,
}

impl Param {
    /// Creates a parameter with a zeroed gradient and no clipping.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims().to_vec());
        Param { value, grad, clip: None, name: name.into() }
    }

    /// Creates a parameter whose value is clamped to `[lo, hi]` after each
    /// optimizer step.
    pub fn with_clip(name: impl Into<String>, value: Tensor, lo: f32, hi: f32) -> Self {
        let mut p = Param::new(name, value);
        p.clip = Some((lo, hi));
        p
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A neural-network layer with an explicit backward pass.
///
/// Contract:
///
/// * `forward` caches whatever the subsequent `backward` needs; calling
///   `forward` again overwrites that cache.
/// * `backward` consumes the gradient w.r.t. the layer's output and returns
///   the gradient w.r.t. its input, **accumulating** (`+=`) parameter
///   gradients so that multi-exit training can sum losses.
/// * `params_mut` exposes trainable parameters in a stable order (optimizers
///   key their state on this order).
pub trait Layer: Send {
    /// Computes the layer output for `input`.
    ///
    /// # Errors
    ///
    /// Returns a [`ddnn_tensor::TensorError`] if `input` has an incompatible
    /// shape.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Computes the gradient w.r.t. the input given the gradient w.r.t. the
    /// output of the most recent `forward`, accumulating parameter
    /// gradients.
    ///
    /// # Errors
    ///
    /// Returns a [`ddnn_tensor::TensorError`] if `grad_output` does not
    /// match the cached forward shape, or if `forward` was never called.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// The layer's trainable parameters, in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Short human-readable layer description, e.g. `"conv2d(3->4, 3x3)"`.
    fn describe(&self) -> String;

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Non-trainable state serialized alongside parameters in checkpoints
    /// (batch normalization's running statistics). Layers without such
    /// state return an empty vector.
    fn extra_state(&self) -> Vec<f32> {
        Vec::new()
    }

    /// Restores state captured by [`Layer::extra_state`].
    ///
    /// # Errors
    ///
    /// Returns an error if `state` has the wrong length for this layer.
    fn load_extra_state(&mut self, state: &[f32]) -> Result<()> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(ddnn_tensor::TensorError::LengthMismatch { expected: 0, actual: state.len() })
        }
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Enables or disables the XNOR–popcount inference kernels on this
    /// layer (and any nested layers). Containers propagate the toggle;
    /// layers without a binary fast path ignore it.
    ///
    /// Both paths produce bit-identical outputs on binarized operands, so
    /// this exists for equivalence testing and benchmarking, not
    /// correctness; it defaults to enabled.
    fn set_bit_kernels(&mut self, _enabled: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new("w", Tensor::ones([2, 2]));
        p.grad = Tensor::ones([2, 2]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn with_clip_records_range() {
        let p = Param::with_clip("w", Tensor::zeros([1]), -1.0, 1.0);
        assert_eq!(p.clip, Some((-1.0, 1.0)));
        assert_eq!(p.name, "w");
    }

    #[test]
    fn grad_shape_matches_value() {
        let p = Param::new("w", Tensor::zeros([3, 4]));
        assert_eq!(p.grad.dims(), &[3, 4]);
    }
}
