//! Weight initialization schemes.

use ddnn_tensor::{Shape, Tensor};
use rand::Rng;

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// This is the initialization Chainer (the paper's original framework) used
/// by default for linear and convolutional links at the time.
pub fn glorot_uniform(
    shape: impl Into<Shape>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -a, a, rng)
}

/// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in)²)`.
pub fn he_normal(shape: impl Into<Shape>, fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(shape, std, rng)
}

/// Fan-in/fan-out for a linear layer of shape `(out, in)`.
pub fn linear_fans(in_features: usize, out_features: usize) -> (usize, usize) {
    (in_features, out_features)
}

/// Fan-in/fan-out for a convolution of shape `(f, c, kh, kw)`.
pub fn conv_fans(filters: usize, channels: usize, kh: usize, kw: usize) -> (usize, usize) {
    (channels * kh * kw, filters * kh * kw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddnn_tensor::rng::rng_from_seed;

    #[test]
    fn glorot_bound_is_respected() {
        let mut rng = rng_from_seed(1);
        let t = glorot_uniform([100, 50], 50, 100, &mut rng);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(t.max().unwrap() <= a);
        assert!(t.min().unwrap() >= -a);
    }

    #[test]
    fn he_normal_scale() {
        let mut rng = rng_from_seed(2);
        let t = he_normal([200, 50], 50, &mut rng);
        let var = t.map(|x| x * x).mean();
        assert!((var - 2.0 / 50.0).abs() < 0.01, "var={var}");
    }

    #[test]
    fn fan_helpers() {
        assert_eq!(linear_fans(10, 20), (10, 20));
        assert_eq!(conv_fans(4, 3, 3, 3), (27, 36));
    }
}
