//! Convolutional layers, in float and BinaryConnect-binarized variants.

use crate::init;
use crate::layer::{Layer, Mode, Param};
use crate::linear::binarize;
use ddnn_tensor::bitmatrix::{binary_conv2d, is_sign_tensor};
use ddnn_tensor::conv::{conv2d, conv2d_backward, Conv2dSpec};
use ddnn_tensor::{Result, Tensor, TensorError};
use rand::Rng;

/// A 2-D convolution layer over NCHW tensors.
///
/// The paper's ConvP blocks use 3×3 kernels, stride 1, padding 1
/// ([`Conv2dSpec::paper_conv`]) with binarized weights on end devices.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    spec: Conv2dSpec,
    binary: bool,
    bit_kernels: bool,
    in_channels: usize,
    filters: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a float-weight convolution with Glorot-uniform init.
    pub fn new(in_channels: usize, filters: usize, spec: Conv2dSpec, rng: &mut impl Rng) -> Self {
        let (fan_in, fan_out) = init::conv_fans(filters, in_channels, spec.kernel_h, spec.kernel_w);
        let w = init::glorot_uniform(
            [filters, in_channels, spec.kernel_h, spec.kernel_w],
            fan_in,
            fan_out,
            rng,
        );
        Conv2d {
            weight: Param::new("conv.weight", w),
            spec,
            binary: false,
            bit_kernels: true,
            in_channels,
            filters,
            cached_input: None,
        }
    }

    /// Creates a BinaryConnect convolution: master weights clipped to
    /// `[-1, 1]`, `sign(W)` used in the forward pass, no bias.
    pub fn binarized(
        in_channels: usize,
        filters: usize,
        spec: Conv2dSpec,
        rng: &mut impl Rng,
    ) -> Self {
        let mut c = Conv2d::new(in_channels, filters, spec, rng);
        c.weight = Param::with_clip("binconv.weight", c.weight.value, -1.0, 1.0);
        c.binary = true;
        c
    }

    /// Whether the layer uses binarized weights.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Number of output filters.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Convolution geometry.
    pub fn spec(&self) -> &Conv2dSpec {
        &self.spec
    }

    /// The weights used in the forward pass (`sign(W)` when binarized).
    pub fn effective_weight(&self) -> Tensor {
        if self.binary {
            binarize(&self.weight.value)
        } else {
            self.weight.value.clone()
        }
    }

    /// Serialized weight size in bytes (1 bit per weight when binarized).
    pub fn memory_bytes(&self) -> usize {
        if self.binary {
            self.weight.value.len().div_ceil(8)
        } else {
            4 * self.weight.value.len()
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if input.rank() != 4 || input.dims()[1] != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                lhs: input.dims().to_vec(),
                rhs: vec![0, self.in_channels, 0, 0],
                op: "conv2d.forward",
            });
        }
        // Binary inference fast path: a ±1 feature map convolved with
        // sign(W) lowers to the fused pack-and-popcount kernel
        // (`BinaryConvPlan` under `binary_conv2d`), bit-identical to the
        // zero-padded f32 convolution. The plan packs the weight matrix
        // once per call and streams every batch element through it, so the
        // runtime's micro-batched tiers (`TierNode.batch_max` stacks B
        // samples into one NCHW batch) amortize the setup across the
        // batch. Raw float inputs (the first device conv sees images, not
        // signs) fall through to the f32 path; training does too, so
        // backward sees the cached float activations it expects.
        if self.binary && self.bit_kernels && mode == Mode::Eval && is_sign_tensor(input) {
            let out = binary_conv2d(input, &self.weight.value, &self.spec)?;
            self.cached_input = Some(input.clone());
            return Ok(out);
        }
        let w = self.effective_weight();
        let out = conv2d(input, &w, &self.spec)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(TensorError::Empty { op: "conv2d.backward before forward" })?;
        let w = self.effective_weight();
        let (gin, gw) = conv2d_backward(input, &w, grad_output, &self.spec)?;
        self.weight.grad.add_assign(&gw)?;
        Ok(gin)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight]
    }

    fn set_bit_kernels(&mut self, enabled: bool) {
        self.bit_kernels = enabled;
    }

    fn describe(&self) -> String {
        format!(
            "{}conv2d({} -> {}, {}x{}/s{}p{})",
            if self.binary { "bin-" } else { "" },
            self.in_channels,
            self.filters,
            self.spec.kernel_h,
            self.spec.kernel_w,
            self.spec.stride,
            self.spec.padding
        )
    }
}

/// A max-pooling layer over NCHW tensors (no parameters).
///
/// The paper's ConvP blocks pool with 3×3 windows, stride 2, padding 1
/// ([`Conv2dSpec::paper_pool`]), halving each spatial dimension.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    spec: Conv2dSpec,
    cached_argmax: Option<Vec<usize>>,
    cached_input_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a pooling layer with the given geometry.
    pub fn new(spec: Conv2dSpec) -> Self {
        MaxPool2d { spec, cached_argmax: None, cached_input_shape: Vec::new() }
    }

    /// The paper's pooling geometry (3×3, stride 2, pad 1).
    pub fn paper() -> Self {
        MaxPool2d::new(Conv2dSpec::paper_pool())
    }
}

impl Default for MaxPool2d {
    fn default() -> Self {
        MaxPool2d::paper()
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        let res = ddnn_tensor::conv::max_pool2d(input, &self.spec)?;
        self.cached_argmax = Some(res.argmax);
        self.cached_input_shape = input.dims().to_vec();
        Ok(res.output)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let argmax = self
            .cached_argmax
            .as_ref()
            .ok_or(TensorError::Empty { op: "max_pool2d.backward before forward" })?;
        ddnn_tensor::conv::max_pool2d_backward(grad_output, argmax, &self.cached_input_shape)
    }

    fn describe(&self) -> String {
        format!(
            "maxpool({}x{}/s{}p{})",
            self.spec.kernel_h, self.spec.kernel_w, self.spec.stride, self.spec.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddnn_tensor::rng::rng_from_seed;

    #[test]
    fn conv_shapes_match_paper_pipeline() {
        let mut rng = rng_from_seed(0);
        let mut conv = Conv2d::binarized(3, 4, Conv2dSpec::paper_conv(), &mut rng);
        let mut pool = MaxPool2d::paper();
        let x = Tensor::randn([2, 3, 32, 32], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 4, 32, 32]);
        let p = pool.forward(&y, Mode::Train).unwrap();
        assert_eq!(p.dims(), &[2, 4, 16, 16]);
    }

    #[test]
    fn conv_rejects_wrong_channels() {
        let mut rng = rng_from_seed(0);
        let mut conv = Conv2d::new(3, 4, Conv2dSpec::paper_conv(), &mut rng);
        assert!(conv.forward(&Tensor::ones([1, 2, 8, 8]), Mode::Train).is_err());
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = rng_from_seed(11);
        let mut conv = Conv2d::new(2, 2, Conv2dSpec::paper_conv(), &mut rng);
        let x = Tensor::randn([1, 2, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let gout = Tensor::ones(y.dims().to_vec());
        let gin = conv.backward(&gout).unwrap();
        let eps = 1e-2;
        let base_w = conv.weight.value.clone();
        for idx in (0..base_w.len()).step_by(7) {
            let mut wp = base_w.clone();
            wp.data_mut()[idx] += eps;
            conv.weight.value = wp;
            let fp = conv.forward(&x, Mode::Train).unwrap().sum();
            let mut wm = base_w.clone();
            wm.data_mut()[idx] -= eps;
            conv.weight.value = wm;
            let fm = conv.forward(&x, Mode::Train).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            let got = conv.weight.grad.data()[idx];
            assert!((num - got).abs() < 0.05, "dW[{idx}]: num={num} got={got}");
        }
        conv.weight.value = base_w;
        for idx in (0..x.len()).step_by(5) {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let fp = conv.forward(&xp, Mode::Train).unwrap().sum();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fm = conv.forward(&xm, Mode::Train).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - gin.data()[idx]).abs() < 0.05);
        }
    }

    #[test]
    fn binarized_conv_uses_sign_weights() {
        let mut rng = rng_from_seed(12);
        let mut conv = Conv2d::binarized(1, 1, Conv2dSpec::new(1, 1, 0), &mut rng);
        conv.weight.value = Tensor::from_vec(vec![0.25], [1, 1, 1, 1]).unwrap();
        let x = Tensor::from_vec(vec![3.0], [1, 1, 1, 1]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.data(), &[3.0]); // weight sign = +1
        conv.weight.value = Tensor::from_vec(vec![-0.25], [1, 1, 1, 1]).unwrap();
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.data(), &[-3.0]);
    }

    #[test]
    fn bit_kernel_conv_matches_float_path_exactly() {
        let mut rng = rng_from_seed(23);
        let mut conv = Conv2d::binarized(4, 6, Conv2dSpec::paper_conv(), &mut rng);
        let x = crate::linear::binarize(&Tensor::randn([2, 4, 8, 8], 1.0, &mut rng));
        let fast = conv.forward(&x, Mode::Eval).unwrap();
        conv.set_bit_kernels(false);
        let slow = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(fast, slow, "XNOR and f32 conv paths must be bit-identical");
        // Raw float input (the first device conv) must fall back cleanly.
        let raw = Tensor::randn([1, 4, 8, 8], 1.0, &mut rng);
        conv.set_bit_kernels(true);
        let a = conv.forward(&raw, Mode::Eval).unwrap();
        conv.set_bit_kernels(false);
        let b = conv.forward(&raw, Mode::Eval).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pool_backward_before_forward_errors() {
        let mut pool = MaxPool2d::paper();
        assert!(pool.backward(&Tensor::ones([1, 1, 2, 2])).is_err());
    }

    #[test]
    fn pool_has_no_params() {
        let mut pool = MaxPool2d::default();
        assert!(pool.params_mut().is_empty());
        assert_eq!(pool.param_count(), 0);
    }

    #[test]
    fn paper_device_conv_is_under_memory_budget() {
        // f=4 binary 3x3 filters over 3 channels: 108 bits -> 14 bytes.
        let mut rng = rng_from_seed(13);
        let conv = Conv2d::binarized(3, 4, Conv2dSpec::paper_conv(), &mut rng);
        assert!(conv.memory_bytes() < 2048);
    }
}
