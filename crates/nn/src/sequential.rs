//! A sequential container of layers — the building unit for the paper's
//! fused blocks and network sections.

use crate::layer::{Layer, Mode, Param};
use ddnn_tensor::{Result, Tensor};

/// Runs layers in order on `forward` and in reverse on `backward`.
///
/// `Sequential` itself implements [`Layer`], so sections can nest (a DDNN
/// device section is a `Sequential` of ConvP blocks, each itself a
/// `Sequential` of conv → pool → batch-norm → binary-activation).
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential").field("layers", &self.describe()).finish()
    }
}

impl Sequential {
    /// Creates an empty container.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer, returning `self` for chaining.
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of contained layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty (an empty `Sequential` is the
    /// identity function).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn describe(&self) -> String {
        let parts: Vec<String> = self.layers.iter().map(|l| l.describe()).collect();
        format!("[{}]", parts.join(" -> "))
    }

    fn extra_state(&self) -> Vec<f32> {
        self.layers.iter().flat_map(|l| l.extra_state()).collect()
    }

    fn set_bit_kernels(&mut self, enabled: bool) {
        for layer in &mut self.layers {
            layer.set_bit_kernels(enabled);
        }
    }

    fn load_extra_state(&mut self, state: &[f32]) -> Result<()> {
        let mut off = 0;
        for layer in &mut self.layers {
            let n = layer.extra_state().len();
            let end = off + n;
            let chunk = state.get(off..end).ok_or(ddnn_tensor::TensorError::LengthMismatch {
                expected: end,
                actual: state.len(),
            })?;
            layer.load_extra_state(chunk)?;
            off = end;
        }
        if off != state.len() {
            return Err(ddnn_tensor::TensorError::LengthMismatch {
                expected: off,
                actual: state.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::linear::Linear;
    use ddnn_tensor::rng::rng_from_seed;

    #[test]
    fn empty_sequential_is_identity() {
        let mut s = Sequential::new();
        let x = Tensor::from_vec(vec![1.0, 2.0], [1, 2]).unwrap();
        assert_eq!(s.forward(&x, Mode::Train).unwrap(), x);
        assert_eq!(s.backward(&x).unwrap(), x);
        assert!(s.is_empty());
    }

    #[test]
    fn chains_layers_in_order() {
        let mut rng = rng_from_seed(0);
        let mut l1 = Linear::new(2, 3, false, &mut rng);
        let mut l2 = Linear::new(3, 1, false, &mut rng);
        let x = Tensor::from_vec(vec![1.0, -1.0], [1, 2]).unwrap();
        // Reference: run layers by hand.
        let expected = {
            let h = l1.forward(&x, Mode::Train).unwrap();
            l2.forward(&h, Mode::Train).unwrap()
        };
        let mut rng = rng_from_seed(0);
        let mut s = Sequential::new()
            .push(Linear::new(2, 3, false, &mut rng))
            .push(Linear::new(3, 1, false, &mut rng));
        let got = s.forward(&x, Mode::Train).unwrap();
        assert_eq!(got, expected);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn collects_params_from_all_layers() {
        let mut rng = rng_from_seed(1);
        let mut s = Sequential::new()
            .push(Linear::new(2, 2, true, &mut rng))
            .push(Relu::new())
            .push(Linear::new(2, 2, false, &mut rng));
        assert_eq!(s.params_mut().len(), 3); // w+b, (none), w
        assert_eq!(s.param_count(), 4 + 2 + 4);
    }

    #[test]
    fn gradient_check_through_stack() {
        let mut rng = rng_from_seed(2);
        let mut s = Sequential::new()
            .push(Linear::new(3, 4, true, &mut rng))
            .push(Relu::new())
            .push(Linear::new(4, 2, true, &mut rng));
        let x = Tensor::randn([2, 3], 1.0, &mut rng);
        let y = s.forward(&x, Mode::Train).unwrap();
        let gin = s.backward(&Tensor::ones(y.dims().to_vec())).unwrap();
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp = s.forward(&xp, Mode::Train).unwrap().sum();
            let fm = s.forward(&xm, Mode::Train).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - gin.data()[idx]).abs() < 1e-2, "dX[{idx}]");
        }
    }

    #[test]
    fn describe_joins_layers() {
        let mut rng = rng_from_seed(3);
        let s = Sequential::new().push(Linear::new(1, 1, false, &mut rng)).push(Relu::new());
        assert!(s.describe().contains("->"));
        assert!(s.describe().contains("relu"));
    }
}
