//! Activation layers: binary sign (with straight-through estimator) and
//! ReLU (used by the float ablation baseline).

use crate::layer::{Layer, Mode};
use ddnn_tensor::{Result, Tensor, TensorError};

/// The binary activation of BNN/eBNN blocks: `y = sign(x) ∈ {−1, +1}`.
///
/// The backward pass is the straight-through estimator of Courbariaux et
/// al.: gradients pass unchanged where `|x| ≤ 1` and are cancelled outside
/// that range (the saturation region of the hard-tanh surrogate).
///
/// Binary activations are what the end device transmits to the cloud — one
/// bit per element (see [`ddnn_tensor::bits::pack_signs`]).
#[derive(Debug, Clone, Default)]
pub struct BinaryActivation {
    cached_input: Option<Tensor>,
}

impl BinaryActivation {
    /// Creates a binary activation layer.
    pub fn new() -> Self {
        BinaryActivation { cached_input: None }
    }
}

impl Layer for BinaryActivation {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        self.cached_input = Some(input.clone());
        Ok(crate::linear::binarize(input))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(TensorError::Empty { op: "binary_activation.backward before forward" })?;
        grad_output.zip(input, |g, x| if x.abs() <= 1.0 { g } else { 0.0 })
    }

    fn describe(&self) -> String {
        "binary-activation".to_string()
    }
}

/// Rectified linear unit `y = max(0, x)`.
///
/// Not used by the paper's binary blocks; provided for the mixed-precision
/// cloud ablation (paper §VI future work) and float baselines.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { cached_input: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _mode: Mode) -> Result<Tensor> {
        self.cached_input = Some(input.clone());
        Ok(input.map(|x| x.max(0.0)))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(TensorError::Empty { op: "relu.backward before forward" })?;
        grad_output.zip(input, |g, x| if x > 0.0 { g } else { 0.0 })
    }

    fn describe(&self) -> String {
        "relu".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_forward_is_sign() {
        let mut act = BinaryActivation::new();
        let x = Tensor::from_vec(vec![-2.0, -0.1, 0.0, 0.1, 2.0], [5]).unwrap();
        let y = act.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[-1.0, -1.0, -1.0, 1.0, 1.0]);
    }

    #[test]
    fn binary_backward_is_straight_through_with_clipping() {
        let mut act = BinaryActivation::new();
        let x = Tensor::from_vec(vec![-2.0, -0.5, 0.5, 1.0, 3.0], [5]).unwrap();
        act.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones([5]);
        let gin = act.backward(&g).unwrap();
        assert_eq!(gin.data(), &[0.0, 1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn binary_backward_before_forward_errors() {
        let mut act = BinaryActivation::new();
        assert!(act.backward(&Tensor::ones([1])).is_err());
    }

    #[test]
    fn relu_forward_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], [3]).unwrap();
        let y = relu.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let gin = relu.backward(&Tensor::ones([3])).unwrap();
        assert_eq!(gin.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(BinaryActivation::new().param_count(), 0);
        assert_eq!(Relu::new().param_count(), 0);
    }

    #[test]
    fn binary_output_survives_bitpack_round_trip() {
        let mut act = BinaryActivation::new();
        let x = Tensor::from_fn([4, 16], |i| (i as f32 * 0.7).sin());
        let y = act.forward(&x, Mode::Eval).unwrap();
        let packed = ddnn_tensor::bits::pack_signs(&y);
        let back = ddnn_tensor::bits::unpack_signs(&packed, [4, 16]).unwrap();
        assert_eq!(back, y);
    }
}
