//! Softmax cross-entropy loss — the optimization objective at every DDNN
//! exit point (paper §III-C).

use ddnn_tensor::{Result, Tensor, TensorError};

/// Everything the loss computation produces in one pass: the scalar loss,
/// the gradient w.r.t. the logits, and the softmax probabilities (reused by
/// exit-confidence computations so the softmax is not recomputed).
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient w.r.t. the logits, shape `(n, classes)`.
    pub grad: Tensor,
    /// Softmax probabilities, shape `(n, classes)`.
    pub probs: Tensor,
}

/// Softmax cross-entropy over a batch of logits.
///
/// The paper writes the per-exit objective as
/// `L(ŷ, y; θ) = −(1/|C|) Σ_c y_c log ŷ_c`; the `1/|C|` class normalization
/// is retained here (it only rescales the effective learning rate but we
/// match the paper exactly).
#[derive(Debug, Clone, Copy)]
pub struct SoftmaxCrossEntropy {
    /// Whether to divide by the number of classes, as the paper's Eq. does.
    pub normalize_by_classes: bool,
}

impl Default for SoftmaxCrossEntropy {
    fn default() -> Self {
        SoftmaxCrossEntropy { normalize_by_classes: true }
    }
}

impl SoftmaxCrossEntropy {
    /// Creates the paper's loss (with `1/|C|` normalization).
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes loss, logits gradient and probabilities for a batch.
    ///
    /// `targets[i]` is the class index of sample `i`.
    ///
    /// # Errors
    ///
    /// Returns an error if `logits` is not rank 2, if `targets.len()`
    /// differs from the batch size, or if any target is out of range.
    pub fn forward(&self, logits: &Tensor, targets: &[usize]) -> Result<LossOutput> {
        if logits.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: logits.rank() });
        }
        let (n, c) = (logits.dims()[0], logits.dims()[1]);
        if targets.len() != n {
            return Err(TensorError::LengthMismatch { expected: n, actual: targets.len() });
        }
        if let Some(&bad) = targets.iter().find(|&&t| t >= c) {
            return Err(TensorError::IndexOutOfBounds { index: vec![bad], shape: vec![n, c] });
        }
        let probs = logits.softmax_rows()?;
        let norm = if self.normalize_by_classes { c as f32 } else { 1.0 };
        let mut loss = 0.0f32;
        let mut grad = probs.clone();
        let scale = 1.0 / (n as f32 * norm);
        for (i, &t) in targets.iter().enumerate() {
            let p = probs.data()[i * c + t].max(1e-12);
            loss -= p.ln();
            grad.data_mut()[i * c + t] -= 1.0;
        }
        loss *= scale;
        grad.scale_in_place(scale);
        Ok(LossOutput { loss, grad, probs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_over_c() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros([2, 3]);
        let out = loss.forward(&logits, &[0, 2]).unwrap();
        // -ln(1/3) / 3 per sample.
        let expected = (3.0f32).ln() / 3.0;
        assert!((out.loss - expected).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0], [1, 3]).unwrap();
        let out = loss.forward(&logits, &[0]).unwrap();
        assert!(out.loss < 1e-3);
        let wrong = loss.forward(&logits, &[1]).unwrap();
        assert!(wrong.loss > 1.0);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // Σ_c (p_c - y_c) = 0, a structural invariant of softmax CE.
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 0.5, -1.0, 0.0, 3.0], [2, 3]).unwrap();
        let out = loss.forward(&logits, &[1, 0]).unwrap();
        for i in 0..2 {
            let s: f32 = out.grad.row(i).unwrap().sum();
            assert!(s.abs() < 1e-7);
        }
    }

    #[test]
    fn gradient_check() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.0, -0.4], [2, 3]).unwrap();
        let targets = [2usize, 0];
        let out = loss.forward(&logits, &targets).unwrap();
        let eps = 1e-3;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let fp = loss.forward(&lp, &targets).unwrap().loss;
            let fm = loss.forward(&lm, &targets).unwrap().loss;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - out.grad.data()[idx]).abs() < 1e-4,
                "d[{idx}]: num={num} got={}",
                out.grad.data()[idx]
            );
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let loss = SoftmaxCrossEntropy::new();
        assert!(loss.forward(&Tensor::zeros([3]), &[0]).is_err());
        assert!(loss.forward(&Tensor::zeros([2, 3]), &[0]).is_err());
        assert!(loss.forward(&Tensor::zeros([1, 3]), &[3]).is_err());
    }

    #[test]
    fn without_class_normalization() {
        let l = SoftmaxCrossEntropy { normalize_by_classes: false };
        let logits = Tensor::zeros([1, 4]);
        let out = l.forward(&logits, &[0]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn probs_lie_on_simplex() {
        let loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_fn([4, 3], |i| (i as f32).sin() * 5.0);
        let out = loss.forward(&logits, &[0, 1, 2, 0]).unwrap();
        for i in 0..4 {
            let row = out.probs.row(i).unwrap();
            assert!((row.sum() - 1.0).abs() < 1e-5);
            assert!(row.min().unwrap() >= 0.0);
        }
    }
}
