//! # ddnn-nn
//!
//! Neural-network layer library for DDNN-RS: explicit forward/backward
//! layers (Caffe style), BinaryConnect-binarized weights, the
//! straight-through binary activation, batch normalization, softmax
//! cross-entropy, and the Adam/SGD optimizers — everything needed to train
//! the paper's fused binary FC and ConvP blocks from scratch on a CPU.
//!
//! The trait of interest is [`Layer`]; every layer caches its own forward
//! activations and implements an exact backward pass (each is verified by
//! finite differences in its unit tests). Parameter gradients *accumulate*
//! across `backward` calls, which is what lets DDNN sum the losses of
//! multiple exit points through shared trunk layers (paper §III-C).
//!
//! ```
//! use ddnn_nn::{Layer, Linear, Mode, SoftmaxCrossEntropy, Adam, Optimizer};
//! use ddnn_tensor::{rng::rng_from_seed, Tensor};
//!
//! # fn main() -> Result<(), ddnn_tensor::TensorError> {
//! let mut rng = rng_from_seed(0);
//! let mut layer = Linear::new(4, 3, true, &mut rng);
//! let mut opt = Adam::new(); // the paper's hyper-parameters
//! let loss = SoftmaxCrossEntropy::new();
//!
//! let x = Tensor::randn([8, 4], 1.0, &mut rng);
//! let y = vec![0usize, 1, 2, 0, 1, 2, 0, 1];
//! for _ in 0..10 {
//!     layer.zero_grad();
//!     let logits = layer.forward(&x, Mode::Train)?;
//!     let out = loss.forward(&logits, &y)?;
//!     layer.backward(&out.grad)?;
//!     opt.step(&mut layer.params_mut());
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod activation;
mod batchnorm;
mod conv_layer;
pub mod init;
mod layer;
mod linear;
mod loss;
mod optim;
mod sequential;

pub use activation::{BinaryActivation, Relu};
pub use batchnorm::BatchNorm;
pub use conv_layer::{Conv2d, MaxPool2d};
pub use layer::{Layer, Mode, Param};
pub use linear::{binarize, Linear};
pub use loss::{LossOutput, SoftmaxCrossEntropy};
pub use optim::{Adam, Optimizer, Sgd};
pub use sequential::Sequential;
