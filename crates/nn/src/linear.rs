//! Fully connected layers, in float and BinaryConnect-binarized variants.

use crate::init;
use crate::layer::{Layer, Mode, Param};
use ddnn_tensor::{bitmatrix, Result, Tensor, TensorError};
use rand::Rng;

/// Binarizes a tensor elementwise to ±1 (`x > 0 → +1`, else `−1`).
///
/// The same convention is used by the wire format in
/// [`ddnn_tensor::bits::pack_signs`], so a binarized activation survives a
/// pack/unpack round trip unchanged.
pub fn binarize(t: &Tensor) -> Tensor {
    t.map(|x| if x > 0.0 { 1.0 } else { -1.0 })
}

/// A fully connected layer `y = x·Wᵀ + b`.
///
/// With [`Linear::binarized`], the forward pass uses `sign(W)` instead of
/// `W` (BinaryConnect): real-valued master weights receive straight-through
/// gradients and are clipped to `[-1, 1]` after each optimizer step. This is
/// the 1-bit-weight building block the paper uses so device models fit in
/// under 2 KB.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Option<Param>,
    binary: bool,
    bit_kernels: bool,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a float-weight linear layer with Glorot-uniform init.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut impl Rng) -> Self {
        let (fan_in, fan_out) = init::linear_fans(in_features, out_features);
        let w = init::glorot_uniform([out_features, in_features], fan_in, fan_out, rng);
        Linear {
            weight: Param::new("linear.weight", w),
            bias: bias.then(|| Param::new("linear.bias", Tensor::zeros([out_features]))),
            binary: false,
            bit_kernels: true,
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Creates a BinaryConnect linear layer: master weights in `[-1, 1]`,
    /// `sign(W)` in the forward pass, no bias (batch norm supplies the
    /// affine terms in the paper's FC block).
    pub fn binarized(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let (fan_in, fan_out) = init::linear_fans(in_features, out_features);
        let w = init::glorot_uniform([out_features, in_features], fan_in, fan_out, rng);
        Linear {
            weight: Param::with_clip("binlinear.weight", w, -1.0, 1.0),
            bias: None,
            binary: true,
            bit_kernels: true,
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Whether the layer uses binarized weights.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weights used in the forward pass (`sign(W)` when binarized).
    pub fn effective_weight(&self) -> Tensor {
        if self.binary {
            binarize(&self.weight.value)
        } else {
            self.weight.value.clone()
        }
    }

    /// Serialized size of the layer's weights in bytes: 1 bit per weight
    /// when binarized, 4 bytes otherwise (plus 4 bytes per bias element).
    ///
    /// This is the quantity the paper's "<2 KB per device" memory budget
    /// constrains.
    pub fn memory_bytes(&self) -> usize {
        let w = if self.binary {
            self.weight.value.len().div_ceil(8)
        } else {
            4 * self.weight.value.len()
        };
        w + self.bias.as_ref().map_or(0, |b| 4 * b.value.len())
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        // Accept (N, in) or anything flattenable to it.
        let n = input.dims().first().copied().unwrap_or(0);
        let flat = input.reshape([n, input.len() / n.max(1)])?;
        if flat.dims()[1] != self.in_features {
            return Err(TensorError::ShapeMismatch {
                lhs: input.dims().to_vec(),
                rhs: vec![n, self.in_features],
                op: "linear.forward",
            });
        }
        // Binary inference fast path: ±1 input against sign(W) lowers to
        // XNOR–popcount, which is bit-identical to the f32 product (every
        // partial sum is a small integer, exact in f32). Training keeps
        // the float path so straight-through gradients see the same
        // activations they cached. Packing the master weights directly is
        // the same as packing binarize(W): both use `x > 0`.
        if self.binary
            && self.bit_kernels
            && mode == Mode::Eval
            && self.bias.is_none()
            && bitmatrix::is_sign_tensor(&flat)
        {
            let out = bitmatrix::binary_matmul(&flat, &self.weight.value)?;
            self.cached_input = Some(flat);
            return Ok(out);
        }
        let w = self.effective_weight();
        let mut out = flat.matmul(&w.transpose()?)?;
        if let Some(b) = &self.bias {
            out.add_row_broadcast(&b.value)?;
        }
        self.cached_input = Some(flat);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(TensorError::Empty { op: "linear.backward before forward" })?;
        let w = self.effective_weight();
        // dW += dYᵀ · X   (straight-through to the master weights)
        let gw = grad_output.transpose()?.matmul(input)?;
        self.weight.grad.add_assign(&gw)?;
        if let Some(b) = &mut self.bias {
            let gb = grad_output.sum_axis(0)?;
            b.grad.add_assign(&gb)?;
        }
        // dX = dY · W (the effective/binarized weights)
        grad_output.matmul(&w)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            ps.push(b);
        }
        ps
    }

    fn set_bit_kernels(&mut self, enabled: bool) {
        self.bit_kernels = enabled;
    }

    fn describe(&self) -> String {
        format!(
            "{}linear({} -> {}{})",
            if self.binary { "bin-" } else { "" },
            self.in_features,
            self.out_features,
            if self.bias.is_some() { ", bias" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddnn_tensor::rng::rng_from_seed;

    #[test]
    fn forward_known_values() {
        let mut rng = rng_from_seed(0);
        let mut l = Linear::new(2, 2, true, &mut rng);
        l.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        if let Some(b) = &mut l.bias {
            b.value = Tensor::from_vec(vec![0.5, -0.5], [2]).unwrap();
        }
        let x = Tensor::from_vec(vec![1.0, 1.0], [1, 2]).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn forward_flattens_higher_rank_input() {
        let mut rng = rng_from_seed(0);
        let mut l = Linear::new(12, 3, false, &mut rng);
        let x = Tensor::ones([2, 3, 2, 2]);
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn forward_rejects_wrong_width() {
        let mut rng = rng_from_seed(0);
        let mut l = Linear::new(4, 2, false, &mut rng);
        assert!(l.forward(&Tensor::ones([1, 5]), Mode::Train).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = rng_from_seed(0);
        let mut l = Linear::new(2, 2, false, &mut rng);
        assert!(l.backward(&Tensor::ones([1, 2])).is_err());
    }

    #[test]
    fn gradient_check_float() {
        let mut rng = rng_from_seed(3);
        let mut l = Linear::new(3, 2, true, &mut rng);
        let x = Tensor::randn([2, 3], 1.0, &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        let gout = Tensor::ones(y.dims().to_vec());
        let gin = l.backward(&gout).unwrap();
        let eps = 1e-3;
        // Weight gradient vs finite differences of sum(y).
        let base_w = l.weight.value.clone();
        for idx in 0..base_w.len() {
            let mut wp = base_w.clone();
            wp.data_mut()[idx] += eps;
            l.weight.value = wp;
            let fp = l.forward(&x, Mode::Train).unwrap().sum();
            let mut wm = base_w.clone();
            wm.data_mut()[idx] -= eps;
            l.weight.value = wm;
            let fm = l.forward(&x, Mode::Train).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            let got = l.weight.grad.data()[idx];
            assert!((num - got).abs() < 1e-2, "dW[{idx}]: num={num} got={got}");
        }
        l.weight.value = base_w;
        // Input gradient.
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let fp = l.forward(&xp, Mode::Train).unwrap().sum();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fm = l.forward(&xm, Mode::Train).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - gin.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn binarized_forward_uses_signs() {
        let mut rng = rng_from_seed(4);
        let mut l = Linear::binarized(2, 1, &mut rng);
        l.weight.value = Tensor::from_vec(vec![0.3, -0.7], [1, 2]).unwrap();
        let x = Tensor::from_vec(vec![2.0, 3.0], [1, 2]).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        // sign weights = [1, -1] -> y = 2 - 3 = -1.
        assert_eq!(y.data(), &[-1.0]);
    }

    #[test]
    fn bit_kernel_path_matches_float_path_exactly() {
        let mut rng = rng_from_seed(21);
        let mut l = Linear::binarized(70, 5, &mut rng); // width crosses a word boundary
        let x = binarize(&Tensor::randn([4, 70], 1.0, &mut rng));
        let fast = l.forward(&x, Mode::Eval).unwrap();
        l.set_bit_kernels(false);
        let slow = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(fast, slow, "XNOR and f32 paths must be bit-identical");
    }

    #[test]
    fn bit_kernel_falls_back_on_non_sign_input() {
        let mut rng = rng_from_seed(22);
        let mut l = Linear::binarized(8, 2, &mut rng);
        let x = Tensor::randn([2, 8], 1.0, &mut rng); // raw floats, not ±1
        let y_eval = l.forward(&x, Mode::Eval).unwrap();
        l.set_bit_kernels(false);
        let y_ref = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y_eval, y_ref);
    }

    #[test]
    fn binarized_has_clip_and_no_bias() {
        let mut rng = rng_from_seed(4);
        let mut l = Linear::binarized(4, 2, &mut rng);
        let ps = l.params_mut();
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].clip, Some((-1.0, 1.0)));
    }

    #[test]
    fn binarize_codomain() {
        let t = Tensor::from_vec(vec![-0.5, 0.0, 0.5], [3]).unwrap();
        assert_eq!(binarize(&t).data(), &[-1.0, -1.0, 1.0]);
    }

    #[test]
    fn memory_bytes_binary_vs_float() {
        let mut rng = rng_from_seed(5);
        let f = Linear::new(1024, 3, false, &mut rng);
        let b = Linear::binarized(1024, 3, &mut rng);
        assert_eq!(f.memory_bytes(), 4 * 3072);
        assert_eq!(b.memory_bytes(), 384); // 3072 bits
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut rng = rng_from_seed(6);
        let mut l = Linear::new(2, 2, false, &mut rng);
        let x = Tensor::ones([1, 2]);
        let g = Tensor::ones([1, 2]);
        l.forward(&x, Mode::Train).unwrap();
        l.backward(&g).unwrap();
        let once = l.weight.grad.clone();
        l.backward(&g).unwrap();
        let twice = l.weight.grad.clone();
        assert_eq!(twice, once.scale(2.0));
    }

    #[test]
    fn describe_mentions_binarization() {
        let mut rng = rng_from_seed(7);
        assert!(Linear::binarized(2, 2, &mut rng).describe().starts_with("bin-"));
        assert!(Linear::new(2, 2, true, &mut rng).describe().contains("bias"));
    }
}
