//! Property-based tests of the layer library's structural invariants.

use ddnn_nn::{
    binarize, Adam, BatchNorm, BinaryActivation, Layer, Linear, Mode, Optimizer, Param,
    SoftmaxCrossEntropy,
};
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #[test]
    fn binarize_codomain_is_plus_minus_one(data in prop::collection::vec(-100.0f32..100.0, 1..64)) {
        let n = data.len();
        let t = Tensor::from_vec(data, [n]).unwrap();
        let b = binarize(&t);
        prop_assert!(b.data().iter().all(|&x| x == 1.0 || x == -1.0));
        // Idempotent.
        prop_assert_eq!(binarize(&b), b);
    }

    #[test]
    fn binary_activation_ste_masks_grads(seed in 0u64..100, n in 1usize..32) {
        let mut rng = rng_from_seed(seed);
        let x = Tensor::rand_uniform([1, n], -3.0, 3.0, &mut rng);
        let mut act = BinaryActivation::new();
        act.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones([1, n]);
        let gin = act.backward(&g).unwrap();
        for (gi, xi) in gin.data().iter().zip(x.data()) {
            if xi.abs() <= 1.0 {
                prop_assert_eq!(*gi, 1.0);
            } else {
                prop_assert_eq!(*gi, 0.0);
            }
        }
    }

    #[test]
    fn pack_signs_roundtrips_binarize_bit_for_bit(
        data in prop::collection::vec(-2.0f32..2.0f32, 2..64),
        zero_at in 0usize..64,
    ) {
        // Plant both zeros: `x > 0.0` must send them to −1 on both paths.
        let mut data = data;
        let n = data.len();
        data[zero_at % n] = 0.0;
        data[(zero_at + 1) % n] = -0.0;
        // The wire packing and the training-time binarization share one
        // sign convention (strictly positive → +1): unpacking the packed
        // raw tensor must equal `binarize` exactly, including on `0.0`
        // and `-0.0`, and packing the binarized tensor must produce the
        // identical byte stream.
        use ddnn_tensor::bits::{pack_signs, unpack_signs};
        let t = Tensor::from_vec(data, [n]).unwrap();
        let b = binarize(&t);
        let back = unpack_signs(&pack_signs(&t), [n]).unwrap();
        prop_assert_eq!(&back, &b);
        prop_assert_eq!(pack_signs(&b), pack_signs(&t));
    }

    #[test]
    fn linear_forward_is_affine(seed in 0u64..50) {
        // f(a + b) - f(a) - f(b) + f(0) == 0 for an affine map.
        let mut rng = rng_from_seed(seed);
        let mut l = Linear::new(4, 3, true, &mut rng);
        let a = Tensor::rand_uniform([1, 4], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform([1, 4], -2.0, 2.0, &mut rng);
        let f = |l: &mut Linear, x: &Tensor| l.forward(x, Mode::Eval).unwrap();
        let sum = a.add(&b).unwrap();
        let lhs = f(&mut l, &sum);
        let zero = f(&mut l, &Tensor::zeros([1, 4]));
        let fa = f(&mut l, &a);
        let fb = f(&mut l, &b);
        let resid = lhs.add(&zero).unwrap().sub(&fa).unwrap().sub(&fb).unwrap();
        prop_assert!(resid.norm_sq() < 1e-6);
    }

    #[test]
    fn batchnorm_train_output_is_standardized(seed in 0u64..50, c in 1usize..4) {
        let mut rng = rng_from_seed(seed);
        let mut bn = BatchNorm::new(c);
        let x = Tensor::rand_uniform([16, c], -9.0, 9.0, &mut rng).shift(3.0);
        let y = bn.forward(&x, Mode::Train).unwrap();
        for ch in 0..c {
            let col: Vec<f32> = (0..16).map(|i| y.data()[i * c + ch]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 16.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            prop_assert!(mean.abs() < 1e-3);
            // Degenerate (constant) columns normalize to zero variance.
            prop_assert!(var < 1.1);
        }
    }

    #[test]
    fn softmax_ce_loss_is_nonnegative_and_grad_rows_sum_zero(
        seed in 0u64..100, n in 1usize..6, c in 2usize..5
    ) {
        let mut rng = rng_from_seed(seed);
        let logits = Tensor::rand_uniform([n, c], -5.0, 5.0, &mut rng);
        let targets: Vec<usize> = (0..n).map(|i| i % c).collect();
        let out = SoftmaxCrossEntropy::new().forward(&logits, &targets).unwrap();
        prop_assert!(out.loss >= 0.0);
        prop_assert!(out.loss.is_finite());
        for i in 0..n {
            prop_assert!(out.grad.row(i).unwrap().sum().abs() < 1e-6);
        }
    }

    #[test]
    fn adam_steps_stay_finite_and_respect_clip(seed in 0u64..50, steps in 1usize..20) {
        let mut rng = rng_from_seed(seed);
        let mut p = Param::with_clip("w", Tensor::rand_uniform([8], -1.0, 1.0, &mut rng), -1.0, 1.0);
        let mut opt = Adam::new();
        for _ in 0..steps {
            p.grad = Tensor::rand_uniform([8], -100.0, 100.0, &mut rng);
            opt.step(&mut [&mut p]);
        }
        prop_assert!(p.value.all_finite());
        prop_assert!(p.value.max().unwrap() <= 1.0);
        prop_assert!(p.value.min().unwrap() >= -1.0);
    }

    #[test]
    fn optimizer_with_zero_grads_is_identity_for_sgd(seed in 0u64..50) {
        let mut rng = rng_from_seed(seed);
        let mut p = Param::new("w", Tensor::rand_uniform([6], -1.0, 1.0, &mut rng));
        let before = p.value.clone();
        let mut opt = ddnn_nn::Sgd::new(0.5);
        p.zero_grad();
        opt.step(&mut [&mut p]);
        prop_assert_eq!(p.value, before);
    }
}
