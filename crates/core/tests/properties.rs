//! Property-based tests of DDNN core invariants: aggregation algebra,
//! exit-policy monotonicity and the communication model.

use ddnn_core::{
    normalized_entropy, AggregationScheme, CommCostModel, DdnnConfig, ExitPolicy, ExitThreshold,
    FeatureAggregator, VectorAggregator,
};
use ddnn_nn::Mode;
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::Tensor;
use ddnn_tensor::TensorError;
use proptest::prelude::*;

proptest! {
    #[test]
    fn normalized_entropy_is_in_unit_interval(data in prop::collection::vec(0.001f32..1.0, 2..8)) {
        let n = data.len();
        let raw = Tensor::from_vec(data, [n]).unwrap();
        let p = raw.scale(1.0 / raw.sum());
        let eta = normalized_entropy(&p).unwrap();
        prop_assert!((0.0..=1.0).contains(&eta));
    }

    #[test]
    fn entropy_maximized_by_uniform(c in 2usize..8, seed in 0u64..50) {
        let uniform = Tensor::full([c], 1.0 / c as f32);
        let eta_u = normalized_entropy(&uniform).unwrap();
        prop_assert!((eta_u - 1.0).abs() < 1e-5);
        let mut rng = rng_from_seed(seed);
        let raw = Tensor::rand_uniform([c], 0.01, 1.0, &mut rng);
        let p = raw.scale(1.0 / raw.sum());
        prop_assert!(normalized_entropy(&p).unwrap() <= eta_u + 1e-6);
    }

    #[test]
    fn finite_logits_always_yield_a_finite_eta_in_unit_interval(
        data in prop::collection::vec(-40.0f32..40.0, 2..9),
        t in 0.0f32..1.0,
    ) {
        // The full exit-evaluation path on arbitrary finite logits: η must
        // come back finite and in [0, 1] — never NaN from a degenerate
        // softmax, never out of range from the clamp.
        let n = data.len();
        let logits = Tensor::from_vec(data, [1, n]).unwrap();
        for policy in [ExitPolicy::Entropy(ExitThreshold::new(t)), ExitPolicy::Terminal] {
            let d = policy.evaluate(&logits).unwrap();
            prop_assert!(d.eta.is_finite(), "{policy:?}: eta {}", d.eta);
            prop_assert!((0.0..=1.0).contains(&d.eta), "{policy:?}: eta {}", d.eta);
            prop_assert!(d.prediction < n);
        }
    }

    #[test]
    fn non_finite_logits_are_always_a_typed_error(
        data in prop::collection::vec(-5.0f32..5.0, 2..6),
        poison_at in 0usize..6,
        poison_kind in 0u8..2,
    ) {
        // A NaN or +inf lane poisons the softmax (inf − inf = NaN) and must
        // surface as TensorError::NonFinite from every decision entry
        // point, not as a silent confident exit. A −inf lane, by contrast,
        // is a representable zero-probability class: it must keep working.
        let mut data = data;
        let n = data.len();
        let poison = if poison_kind == 0 { f32::NAN } else { f32::INFINITY };
        let lane = poison_at % n;
        data[lane] = poison;
        let logits = Tensor::from_vec(data.clone(), [1, n]).unwrap();
        for policy in [ExitPolicy::Entropy(ExitThreshold::default()), ExitPolicy::Terminal] {
            for err in [
                policy.evaluate(&logits).unwrap_err(),
                policy.decide(&logits).map(|_| ()).unwrap_err(),
                policy.decide_rows(&logits).map(|_| ()).unwrap_err(),
            ] {
                prop_assert!(
                    matches!(err, TensorError::NonFinite { .. }),
                    "{policy:?}: got {err:?}"
                );
            }
        }
        data[lane] = f32::NEG_INFINITY;
        let logits = Tensor::from_vec(data, [1, n]).unwrap();
        let d = ExitPolicy::Terminal.evaluate(&logits).unwrap();
        prop_assert!(d.eta.is_finite() && (0.0..=1.0).contains(&d.eta));
        prop_assert!(d.prediction != lane, "a zero-probability class cannot win the argmax");
    }

    #[test]
    fn exit_sets_are_monotone_in_threshold(eta in 0.0f32..1.0, t1 in 0.0f32..1.0, t2 in 0.0f32..1.0) {
        // If a sample exits at threshold t1 and t2 >= t1, it also exits at t2.
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        if ExitThreshold::new(lo).should_exit(eta) {
            prop_assert!(ExitThreshold::new(hi).should_exit(eta));
        }
    }

    #[test]
    fn mp_dominates_ap_pointwise(seed in 0u64..100, n_inputs in 2usize..5) {
        let mut rng = rng_from_seed(seed);
        let inputs: Vec<Tensor> =
            (0..n_inputs).map(|_| Tensor::rand_uniform([2, 3], -4.0, 4.0, &mut rng)).collect();
        let mut mp = VectorAggregator::new(AggregationScheme::MaxPool, n_inputs, 3, &mut rng);
        let mut ap = VectorAggregator::new(AggregationScheme::AvgPool, n_inputs, 3, &mut rng);
        let vmax = mp.forward(&inputs, Mode::Eval).unwrap();
        let vavg = ap.forward(&inputs, Mode::Eval).unwrap();
        for (m, a) in vmax.data().iter().zip(vavg.data()) {
            prop_assert!(m >= a);
        }
    }

    #[test]
    fn mp_backward_conserves_gradient_mass(seed in 0u64..100) {
        let mut rng = rng_from_seed(seed);
        let inputs: Vec<Tensor> =
            (0..3).map(|_| Tensor::rand_uniform([1, 4], -1.0, 1.0, &mut rng)).collect();
        let mut mp = VectorAggregator::new(AggregationScheme::MaxPool, 3, 4, &mut rng);
        mp.forward(&inputs, Mode::Eval).unwrap();
        let g = Tensor::rand_uniform([1, 4], 0.0, 1.0, &mut rng);
        let grads = mp.backward(&g).unwrap();
        let total: f32 = grads.iter().map(|t| t.sum()).sum();
        prop_assert!((total - g.sum()).abs() < 1e-5);
        // Exactly one device receives each component.
        for j in 0..4 {
            let nonzero = grads.iter().filter(|t| t.data()[j] != 0.0).count();
            prop_assert!(nonzero <= 1);
        }
    }

    #[test]
    fn feature_cc_width_is_sum_of_inputs(n_inputs in 1usize..6, f in 1usize..5) {
        let agg = FeatureAggregator::new(AggregationScheme::Concat, n_inputs);
        prop_assert_eq!(agg.output_channels(f), n_inputs * f);
        let mp = FeatureAggregator::new(AggregationScheme::MaxPool, n_inputs);
        prop_assert_eq!(mp.output_channels(f), f);
    }

    #[test]
    fn comm_cost_is_monotone_and_bounded(f in 1usize..8, l1 in 0.0f32..1.0, l2 in 0.0f32..1.0) {
        let cfg = DdnnConfig { device_filters: f, ..DdnnConfig::paper() };
        let m = CommCostModel::from_config(&cfg);
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        prop_assert!(m.bytes_per_sample(hi) <= m.bytes_per_sample(lo));
        prop_assert!(m.bytes_per_sample(lo) <= m.bytes_per_sample(0.0));
        prop_assert!(m.bytes_per_sample(hi) >= m.summary_bytes() as f32);
    }

    #[test]
    fn aggregators_are_deterministic(seed in 0u64..50) {
        let mut rng = rng_from_seed(seed);
        let inputs: Vec<Tensor> =
            (0..4).map(|_| Tensor::rand_uniform([1, 2, 4, 4], -1.0, 1.0, &mut rng)).collect();
        for scheme in AggregationScheme::ALL {
            let mut a = FeatureAggregator::new(scheme, 4);
            let mut b = FeatureAggregator::new(scheme, 4);
            prop_assert_eq!(a.forward(&inputs).unwrap(), b.forward(&inputs).unwrap());
        }
    }
}

#[test]
fn bit_kernels_match_f32_on_trained_model() {
    // Train a small DDNN jointly, then run staged inference with and
    // without the XNOR kernels: every prediction, exit decision and
    // entropy must be identical — the bit path is an exact drop-in.
    use ddnn_core::{train, Ddnn, TrainConfig};
    let mut rng = rng_from_seed(23);
    let views: Vec<Tensor> =
        (0..2).map(|_| Tensor::rand_uniform([8, 3, 32, 32], 0.0, 1.0, &mut rng)).collect();
    let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
    let mut model = Ddnn::new(DdnnConfig {
        num_devices: 2,
        device_filters: 2,
        cloud_filters: [4, 8],
        ..DdnnConfig::default()
    });
    let cfg =
        TrainConfig { epochs: 1, batch_size: 8, stat_refresh_passes: 1, ..TrainConfig::default() };
    train(&mut model, &views, &labels, &cfg).unwrap();
    let t = ExitThreshold::new(0.5);
    let plain = model.infer(&views, t, None).unwrap();
    model.set_bit_kernels(true);
    let bitwise = model.infer(&views, t, None).unwrap();
    assert_eq!(plain.predictions, bitwise.predictions);
    assert_eq!(plain.exits, bitwise.exits);
    assert_eq!(plain.local_entropy, bitwise.local_entropy);
    assert_eq!(plain.logits.local, bitwise.logits.local);
    assert_eq!(plain.logits.cloud, bitwise.logits.cloud);
}

#[test]
fn training_and_inference_are_invariant_to_thread_count() {
    // The determinism contract: DDNN_THREADS changes how work is carved
    // up, never what is computed. One test owns the env-var mutation so
    // it stays self-contained within this process.
    use ddnn_core::{train, Ddnn, TrainConfig};
    let run = || {
        let mut rng = rng_from_seed(31);
        let views: Vec<Tensor> =
            (0..2).map(|_| Tensor::rand_uniform([8, 3, 32, 32], 0.0, 1.0, &mut rng)).collect();
        let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let mut model = Ddnn::new(DdnnConfig {
            num_devices: 2,
            device_filters: 2,
            cloud_filters: [4, 8],
            ..DdnnConfig::default()
        });
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            grad_shards: 2,
            stat_refresh_passes: 1,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &views, &labels, &cfg).unwrap();
        let logits = model.forward(&views, ddnn_nn::Mode::Eval).unwrap();
        (report.epochs, logits.local, logits.cloud)
    };
    std::env::set_var("DDNN_THREADS", "1");
    let serial = run();
    std::env::set_var("DDNN_THREADS", "4");
    let parallel = run();
    std::env::remove_var("DDNN_THREADS");
    assert_eq!(serial.0, parallel.0, "per-epoch losses must be bit-identical");
    assert_eq!(serial.1, parallel.1, "local logits must be bit-identical");
    assert_eq!(serial.2, parallel.2, "cloud logits must be bit-identical");
}

#[test]
fn mp_and_ap_local_aggregation_differ_in_training() {
    // Regression guard: Table I rows for MP-CC and AP-CC must come from
    // genuinely different gradient routing, visible after a few steps.
    use ddnn_core::{train, Ddnn, TrainConfig};
    let mut rng = rng_from_seed(99);
    let views: Vec<Tensor> =
        (0..2).map(|_| Tensor::rand_uniform([12, 3, 32, 32], 0.0, 1.0, &mut rng)).collect();
    let labels: Vec<usize> = (0..12).map(|i| i % 3).collect();
    let build = |local| {
        Ddnn::new(DdnnConfig {
            num_devices: 2,
            device_filters: 2,
            cloud_filters: [4, 8],
            local_agg: local,
            ..DdnnConfig::default()
        })
    };
    let cfg =
        TrainConfig { epochs: 2, batch_size: 12, stat_refresh_passes: 0, ..TrainConfig::default() };
    let mut mp = build(AggregationScheme::MaxPool);
    let mut ap = build(AggregationScheme::AvgPool);
    train(&mut mp, &views, &labels, &cfg).unwrap();
    train(&mut ap, &views, &labels, &cfg).unwrap();
    let lm = mp.forward(&views, Mode::Eval).unwrap();
    let la = ap.forward(&views, Mode::Eval).unwrap();
    assert!(
        lm.local.max_abs_diff(&la.local).unwrap() > 1e-4,
        "MP and AP local aggregation trained to identical logits"
    );
}
