//! Joint multi-exit training (paper §III-C): minimize the weighted sum of
//! softmax cross-entropy losses over all exit points with Adam.

use crate::model::{Ddnn, ExitGrads};
use ddnn_nn::{Adam, Mode, Optimizer, SoftmaxCrossEntropy};
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::{parallel, Result, Tensor, TensorError};
use rand::seq::SliceRandom;

/// Training hyper-parameters. Defaults follow the paper (§IV-A): Adam with
/// α = 0.001, β₁ = 0.9, β₂ = 0.999, ε = 1e-8, 100 epochs, equal exit
/// weights.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set (paper: 100).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam step size α.
    pub lr: f32,
    /// Loss weight of each exit, local first, cloud last (paper: equal).
    /// When shorter than the number of exits, missing weights default
    /// to 1.0.
    pub exit_weights: Vec<f32>,
    /// Shuffling seed.
    pub seed: u64,
    /// Forward-only passes used to re-estimate batch-norm running
    /// statistics with the final weights after training (see
    /// [`Ddnn::refresh_batch_norm_stats`]). `0` disables the refresh.
    pub stat_refresh_passes: usize,
    /// Number of shards each mini-batch is split into for data-parallel
    /// forward/backward across the worker pool (`1`, the default, keeps
    /// the exact single-model legacy path).
    ///
    /// Shards are contiguous sub-batches of fixed size `⌈n/S⌉`; each runs
    /// on its own deep copy of the model and the shard gradients are
    /// reduced into the master in fixed shard order, weighted by
    /// `shard_n/total_n` (the loss is a batch mean, so this reproduces the
    /// full-batch gradient scaling). The decomposition depends only on
    /// `grad_shards` — never on `DDNN_THREADS` — so a given configuration
    /// trains identically at any thread count. Note that `S > 1` changes
    /// which samples share batch-norm statistics and is therefore a
    /// (deterministically) different trajectory than `S = 1`.
    pub grad_shards: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            batch_size: 50,
            lr: 0.001,
            exit_weights: vec![],
            seed: 123,
            stat_refresh_passes: 3,
            grad_shards: 1,
        }
    }
}

impl TrainConfig {
    /// The paper's training recipe.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A shorter recipe for tests and quick experiments.
    pub fn quick(epochs: usize) -> Self {
        TrainConfig { epochs, ..Self::default() }
    }
}

/// Loss trace of one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean combined loss over batches.
    pub loss: f32,
    /// Mean local-exit loss.
    pub local_loss: f32,
    /// Mean edge-exit loss (0 when there is no edge).
    pub edge_loss: f32,
    /// Mean cloud-exit loss.
    pub cloud_loss: f32,
}

/// Result of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-epoch loss statistics.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Final combined loss (0 if no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(0.0, |e| e.loss)
    }
}

/// Trains a DDNN on multi-view data: `views[d]` holds device `d`'s
/// `(n, 3, 32, 32)` batch for all `n` training samples, `labels` the shared
/// ground truth.
///
/// # Errors
///
/// Returns an error for inconsistent view/label sizes or internal shape
/// errors.
pub fn train(
    model: &mut Ddnn,
    views: &[Tensor],
    labels: &[usize],
    cfg: &TrainConfig,
) -> Result<TrainReport> {
    let n = labels.len();
    if views.is_empty() || views.iter().any(|v| v.dims()[0] != n) {
        return Err(TensorError::LengthMismatch {
            expected: n,
            actual: views.first().map_or(0, |v| v.dims()[0]),
        });
    }
    let has_edge = model.num_exits() == 3;
    let weight = |i: usize| cfg.exit_weights.get(i).copied().unwrap_or(1.0);
    let (w_local, w_edge, w_cloud) =
        if has_edge { (weight(0), weight(1), weight(2)) } else { (weight(0), 0.0, weight(1)) };

    let mut opt = Adam::with_lr(cfg.lr);
    let loss_fn = SoftmaxCrossEntropy::new();
    let mut rng = rng_from_seed(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut report = TrainReport::default();

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut sums = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let batch_views: Vec<Tensor> =
                views.iter().map(|v| v.select_axis0(chunk)).collect::<Result<_>>()?;
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();

            model.zero_grad();
            let shards = cfg.grad_shards.max(1).min(batch_labels.len());
            let (l_loss, e_loss, c_loss) = if shards <= 1 {
                // Exact legacy path: one forward/backward on the master.
                let logits = model.forward(&batch_views, Mode::Train)?;
                let local = loss_fn.forward(&logits.local, &batch_labels)?;
                let cloud = loss_fn.forward(&logits.cloud, &batch_labels)?;
                let edge =
                    logits.edge.as_ref().map(|e| loss_fn.forward(e, &batch_labels)).transpose()?;
                let grads = ExitGrads {
                    local: local.grad.scale(w_local),
                    edge: edge.as_ref().map(|e| e.grad.scale(w_edge)),
                    cloud: cloud.grad.scale(w_cloud),
                };
                model.backward(&grads)?;
                (local.loss, edge.as_ref().map_or(0.0, |e| e.loss), cloud.loss)
            } else {
                sharded_batch(
                    model,
                    &batch_views,
                    &batch_labels,
                    shards,
                    &loss_fn,
                    (w_local, w_edge, w_cloud),
                )?
            };
            opt.step(&mut model.params_mut());

            sums.0 += w_local * l_loss + w_edge * e_loss + w_cloud * c_loss;
            sums.1 += l_loss;
            sums.2 += e_loss;
            sums.3 += c_loss;
            batches += 1;
        }
        let b = batches.max(1) as f32;
        report.epochs.push(EpochStats {
            epoch,
            loss: sums.0 / b,
            local_loss: sums.1 / b,
            edge_loss: sums.2 / b,
            cloud_loss: sums.3 / b,
        });
    }
    if cfg.stat_refresh_passes > 0 {
        model.refresh_batch_norm_stats(views, cfg.batch_size, cfg.stat_refresh_passes)?;
    }
    Ok(report)
}

/// Runs one mini-batch as `shards` data-parallel forward/backward passes on
/// deep copies of the master model and reduces the shard gradients into the
/// master. Returns the batch-mean `(local, edge, cloud)` losses.
///
/// Determinism contract: shard boundaries are a fixed function of the batch
/// size and `shards`; each shard's computation is the ordinary serial path
/// on its own model copy; and the reduction walks shards in index order on
/// the calling thread. The result is bit-identical for any `DDNN_THREADS`.
fn sharded_batch(
    model: &mut Ddnn,
    batch_views: &[Tensor],
    batch_labels: &[usize],
    shards: usize,
    loss_fn: &SoftmaxCrossEntropy,
    (w_local, w_edge, w_cloud): (f32, f32, f32),
) -> Result<(f32, f32, f32)> {
    let n = batch_labels.len();
    let per = n.div_ceil(shards);
    let ranges: Vec<(usize, usize)> =
        (0..shards).map(|s| (s * per, ((s + 1) * per).min(n))).filter(|(a, b)| a < b).collect();
    let snapshot: &Ddnn = model;
    let shard_runs = parallel::par_map_indexed(ranges.len(), |si| {
        let (start, end) = ranges[si];
        let idx: Vec<usize> = (start..end).collect();
        let shard_views: Vec<Tensor> =
            batch_views.iter().map(|v| v.select_axis0(&idx)).collect::<Result<_>>()?;
        let shard_labels = &batch_labels[start..end];
        let mut shard = snapshot.clone();
        let logits = shard.forward(&shard_views, Mode::Train)?;
        let local = loss_fn.forward(&logits.local, shard_labels)?;
        let cloud = loss_fn.forward(&logits.cloud, shard_labels)?;
        let edge = logits.edge.as_ref().map(|e| loss_fn.forward(e, shard_labels)).transpose()?;
        let grads = ExitGrads {
            local: local.grad.scale(w_local),
            edge: edge.as_ref().map(|e| e.grad.scale(w_edge)),
            cloud: cloud.grad.scale(w_cloud),
        };
        shard.backward(&grads)?;
        Ok::<_, TensorError>((shard, local.loss, edge.as_ref().map_or(0.0, |e| e.loss), cloud.loss))
    });

    // Fixed-order weighted reduce on the calling thread. The per-sample
    // loss-gradient scale is 1/(shard_n·norm), so weighting by
    // shard_n/total_n restores the full-batch 1/(total_n·norm) scaling.
    let total = n as f32;
    let mut losses = (0.0f32, 0.0f32, 0.0f32);
    let mut shard_models: Vec<Ddnn> = Vec::with_capacity(ranges.len());
    for (run, &(start, end)) in shard_runs.into_iter().zip(&ranges) {
        let (shard, l, e, c) = run?;
        let w = (end - start) as f32 / total;
        losses.0 += w * l;
        losses.1 += w * e;
        losses.2 += w * c;
        shard_models.push(shard);
    }
    for (si, shard) in shard_models.iter_mut().enumerate() {
        let (start, end) = ranges[si];
        let w = (end - start) as f32 / total;
        for (mp, sp) in model.params_mut().into_iter().zip(shard.params_mut()) {
            mp.grad.add_assign(&sp.grad.scale(w))?;
        }
    }
    // Batch-norm running statistics cannot be meaningfully averaged across
    // shards mid-EMA; adopt shard 0's (the post-training
    // `refresh_batch_norm_stats` pass recomputes them from the final
    // weights anyway).
    if let Some(first) = shard_models.first_mut() {
        let states: Vec<Vec<f32>> = first.blocks_mut().iter().map(|b| b.extra_state()).collect();
        for (block, state) in model.blocks_mut().into_iter().zip(states) {
            block.load_extra_state(&state)?;
        }
    }
    Ok(losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::AggregationScheme;
    use crate::model::{DdnnConfig, EdgeConfig};

    /// A linearly separable two-device toy problem: class = which device
    /// sees a bright image.
    fn toy_data(n: usize, seed: u64) -> (Vec<Tensor>, Vec<usize>) {
        let mut rng = rng_from_seed(seed);
        let mut v0 = Vec::new();
        let mut v1 = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 3;
            let bright = |on: bool, rng: &mut rand::rngs::StdRng| {
                if on {
                    Tensor::rand_uniform([3, 32, 32], 0.7, 1.0, rng)
                } else {
                    Tensor::rand_uniform([3, 32, 32], 0.0, 0.3, rng)
                }
            };
            v0.push(bright(label == 0 || label == 2, &mut rng));
            v1.push(bright(label == 1 || label == 2, &mut rng));
            labels.push(label);
        }
        (vec![Tensor::stack(&v0).unwrap(), Tensor::stack(&v1).unwrap()], labels)
    }

    fn small_model() -> Ddnn {
        Ddnn::new(DdnnConfig {
            num_devices: 2,
            device_filters: 2,
            cloud_filters: [4, 8],
            ..DdnnConfig::default()
        })
    }

    #[test]
    fn loss_decreases_on_separable_toy_problem() {
        let (views, labels) = toy_data(48, 0);
        let mut model = small_model();
        let cfg = TrainConfig { epochs: 15, batch_size: 16, ..TrainConfig::default() };
        let report = train(&mut model, &views, &labels, &cfg).unwrap();
        assert_eq!(report.epochs.len(), 15);
        let first = report.epochs[0].loss;
        let last = report.final_loss();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn training_reaches_high_train_accuracy_on_toy() {
        let (views, labels) = toy_data(48, 1);
        let mut model = small_model();
        let cfg = TrainConfig { epochs: 40, batch_size: 16, ..TrainConfig::default() };
        train(&mut model, &views, &labels, &cfg).unwrap();
        let preds = model.predict_at(&views, crate::model::ExitPoint::Cloud).unwrap();
        let acc = crate::metrics::accuracy(&preds, &labels);
        assert!(acc > 0.8, "cloud train accuracy {acc}");
    }

    #[test]
    fn edge_model_trains() {
        let (views, labels) = toy_data(24, 2);
        let mut model = Ddnn::new(DdnnConfig {
            num_devices: 2,
            device_filters: 2,
            cloud_filters: [4, 8],
            edge: Some(EdgeConfig { filters: 4, agg: AggregationScheme::Concat }),
            ..DdnnConfig::default()
        });
        let cfg = TrainConfig { epochs: 5, batch_size: 12, ..TrainConfig::default() };
        let report = train(&mut model, &views, &labels, &cfg).unwrap();
        assert!(report.epochs.iter().all(|e| e.loss.is_finite()));
        assert!(report.epochs[0].edge_loss > 0.0);
    }

    #[test]
    fn exit_weights_are_respected() {
        // Zero weight on the local exit: the local loss should not improve
        // much relative to a jointly trained model.
        let (views, labels) = toy_data(24, 3);
        let mut cloud_only = small_model();
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 12,
            exit_weights: vec![0.0, 1.0],
            ..TrainConfig::default()
        };
        let r = train(&mut cloud_only, &views, &labels, &cfg).unwrap();
        let mut joint = small_model();
        let cfg2 = TrainConfig { epochs: 10, batch_size: 12, ..TrainConfig::default() };
        let r2 = train(&mut joint, &views, &labels, &cfg2).unwrap();
        let local_drop_zero = r.epochs[0].local_loss - r.epochs.last().unwrap().local_loss;
        let local_drop_joint = r2.epochs[0].local_loss - r2.epochs.last().unwrap().local_loss;
        assert!(
            local_drop_joint > local_drop_zero - 0.05,
            "joint training should improve local loss at least as much \
             (joint {local_drop_joint} vs zero-weight {local_drop_zero})"
        );
    }

    #[test]
    fn sharded_training_is_reproducible_and_learns() {
        let (views, labels) = toy_data(24, 5);
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 12,
            grad_shards: 3,
            stat_refresh_passes: 1,
            ..TrainConfig::default()
        };
        let mut a = small_model();
        let ra = train(&mut a, &views, &labels, &cfg).unwrap();
        let mut b = small_model();
        let rb = train(&mut b, &views, &labels, &cfg).unwrap();
        // Bit-identical loss curves and final weights across runs: the
        // shard decomposition and reduction order are fixed.
        assert_eq!(ra.epochs, rb.epochs);
        let oa = a.forward(&views, Mode::Eval).unwrap();
        let ob = b.forward(&views, Mode::Eval).unwrap();
        assert_eq!(oa.cloud, ob.cloud);
        assert!(ra.final_loss().is_finite());
        assert!(
            ra.final_loss() < ra.epochs[0].loss,
            "sharded loss did not decrease: {} -> {}",
            ra.epochs[0].loss,
            ra.final_loss()
        );
    }

    #[test]
    fn shard_count_above_batch_size_is_clamped() {
        let (views, labels) = toy_data(8, 6);
        let mut model = small_model();
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 4,
            grad_shards: 64,
            stat_refresh_passes: 0,
            ..TrainConfig::default()
        };
        let report = train(&mut model, &views, &labels, &cfg).unwrap();
        assert!(report.final_loss().is_finite());
    }

    #[test]
    fn single_shard_matches_legacy_path_exactly() {
        // grad_shards = 1 must take the identical code path (and produce
        // identical bytes) as the pre-sharding trainer.
        let (views, labels) = toy_data(12, 7);
        let cfg1 = TrainConfig {
            epochs: 3,
            batch_size: 6,
            stat_refresh_passes: 0,
            ..TrainConfig::default()
        };
        let cfg2 = TrainConfig { grad_shards: 1, ..cfg1.clone() };
        let mut a = small_model();
        let ra = train(&mut a, &views, &labels, &cfg1).unwrap();
        let mut b = small_model();
        let rb = train(&mut b, &views, &labels, &cfg2).unwrap();
        assert_eq!(ra.epochs, rb.epochs);
    }

    #[test]
    fn rejects_mismatched_sizes() {
        let (views, labels) = toy_data(10, 4);
        let mut model = small_model();
        let bad_labels = &labels[..5];
        assert!(train(&mut model, &views, bad_labels, &TrainConfig::quick(1)).is_err());
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = TrainConfig::paper();
        assert_eq!(cfg.epochs, 100);
        assert_eq!(cfg.lr, 0.001);
        assert!(cfg.exit_weights.is_empty(), "equal weights by default");
    }
}
