//! Joint multi-exit training (paper §III-C): minimize the weighted sum of
//! softmax cross-entropy losses over all exit points with Adam.

use crate::model::{Ddnn, ExitGrads};
use ddnn_nn::{Adam, Mode, Optimizer, SoftmaxCrossEntropy};
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::{Result, Tensor, TensorError};
use rand::seq::SliceRandom;

/// Training hyper-parameters. Defaults follow the paper (§IV-A): Adam with
/// α = 0.001, β₁ = 0.9, β₂ = 0.999, ε = 1e-8, 100 epochs, equal exit
/// weights.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set (paper: 100).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam step size α.
    pub lr: f32,
    /// Loss weight of each exit, local first, cloud last (paper: equal).
    /// When shorter than the number of exits, missing weights default
    /// to 1.0.
    pub exit_weights: Vec<f32>,
    /// Shuffling seed.
    pub seed: u64,
    /// Forward-only passes used to re-estimate batch-norm running
    /// statistics with the final weights after training (see
    /// [`Ddnn::refresh_batch_norm_stats`]). `0` disables the refresh.
    pub stat_refresh_passes: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            batch_size: 50,
            lr: 0.001,
            exit_weights: vec![],
            seed: 123,
            stat_refresh_passes: 3,
        }
    }
}

impl TrainConfig {
    /// The paper's training recipe.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A shorter recipe for tests and quick experiments.
    pub fn quick(epochs: usize) -> Self {
        TrainConfig { epochs, ..Self::default() }
    }
}

/// Loss trace of one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean combined loss over batches.
    pub loss: f32,
    /// Mean local-exit loss.
    pub local_loss: f32,
    /// Mean edge-exit loss (0 when there is no edge).
    pub edge_loss: f32,
    /// Mean cloud-exit loss.
    pub cloud_loss: f32,
}

/// Result of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-epoch loss statistics.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Final combined loss (0 if no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epochs.last().map_or(0.0, |e| e.loss)
    }
}

/// Trains a DDNN on multi-view data: `views[d]` holds device `d`'s
/// `(n, 3, 32, 32)` batch for all `n` training samples, `labels` the shared
/// ground truth.
///
/// # Errors
///
/// Returns an error for inconsistent view/label sizes or internal shape
/// errors.
pub fn train(
    model: &mut Ddnn,
    views: &[Tensor],
    labels: &[usize],
    cfg: &TrainConfig,
) -> Result<TrainReport> {
    let n = labels.len();
    if views.is_empty() || views.iter().any(|v| v.dims()[0] != n) {
        return Err(TensorError::LengthMismatch {
            expected: n,
            actual: views.first().map_or(0, |v| v.dims()[0]),
        });
    }
    let has_edge = model.num_exits() == 3;
    let weight = |i: usize| cfg.exit_weights.get(i).copied().unwrap_or(1.0);
    let (w_local, w_edge, w_cloud) =
        if has_edge { (weight(0), weight(1), weight(2)) } else { (weight(0), 0.0, weight(1)) };

    let mut opt = Adam::with_lr(cfg.lr);
    let loss_fn = SoftmaxCrossEntropy::new();
    let mut rng = rng_from_seed(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut report = TrainReport::default();

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut sums = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let batch_views: Vec<Tensor> =
                views.iter().map(|v| v.select_axis0(chunk)).collect::<Result<_>>()?;
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();

            model.zero_grad();
            let logits = model.forward(&batch_views, Mode::Train)?;
            let local = loss_fn.forward(&logits.local, &batch_labels)?;
            let cloud = loss_fn.forward(&logits.cloud, &batch_labels)?;
            let edge =
                logits.edge.as_ref().map(|e| loss_fn.forward(e, &batch_labels)).transpose()?;

            let grads = ExitGrads {
                local: local.grad.scale(w_local),
                edge: edge.as_ref().map(|e| e.grad.scale(w_edge)),
                cloud: cloud.grad.scale(w_cloud),
            };
            model.backward(&grads)?;
            opt.step(&mut model.params_mut());

            let e_loss = edge.as_ref().map_or(0.0, |e| e.loss);
            sums.0 += w_local * local.loss + w_edge * e_loss + w_cloud * cloud.loss;
            sums.1 += local.loss;
            sums.2 += e_loss;
            sums.3 += cloud.loss;
            batches += 1;
        }
        let b = batches.max(1) as f32;
        report.epochs.push(EpochStats {
            epoch,
            loss: sums.0 / b,
            local_loss: sums.1 / b,
            edge_loss: sums.2 / b,
            cloud_loss: sums.3 / b,
        });
    }
    if cfg.stat_refresh_passes > 0 {
        model.refresh_batch_norm_stats(views, cfg.batch_size, cfg.stat_refresh_passes)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregation::AggregationScheme;
    use crate::model::{DdnnConfig, EdgeConfig};

    /// A linearly separable two-device toy problem: class = which device
    /// sees a bright image.
    fn toy_data(n: usize, seed: u64) -> (Vec<Tensor>, Vec<usize>) {
        let mut rng = rng_from_seed(seed);
        let mut v0 = Vec::new();
        let mut v1 = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 3;
            let bright = |on: bool, rng: &mut rand::rngs::StdRng| {
                if on {
                    Tensor::rand_uniform([3, 32, 32], 0.7, 1.0, rng)
                } else {
                    Tensor::rand_uniform([3, 32, 32], 0.0, 0.3, rng)
                }
            };
            v0.push(bright(label == 0 || label == 2, &mut rng));
            v1.push(bright(label == 1 || label == 2, &mut rng));
            labels.push(label);
        }
        (vec![Tensor::stack(&v0).unwrap(), Tensor::stack(&v1).unwrap()], labels)
    }

    fn small_model() -> Ddnn {
        Ddnn::new(DdnnConfig {
            num_devices: 2,
            device_filters: 2,
            cloud_filters: [4, 8],
            ..DdnnConfig::default()
        })
    }

    #[test]
    fn loss_decreases_on_separable_toy_problem() {
        let (views, labels) = toy_data(48, 0);
        let mut model = small_model();
        let cfg = TrainConfig { epochs: 15, batch_size: 16, ..TrainConfig::default() };
        let report = train(&mut model, &views, &labels, &cfg).unwrap();
        assert_eq!(report.epochs.len(), 15);
        let first = report.epochs[0].loss;
        let last = report.final_loss();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(last.is_finite());
    }

    #[test]
    fn training_reaches_high_train_accuracy_on_toy() {
        let (views, labels) = toy_data(48, 1);
        let mut model = small_model();
        let cfg = TrainConfig { epochs: 40, batch_size: 16, ..TrainConfig::default() };
        train(&mut model, &views, &labels, &cfg).unwrap();
        let preds = model.predict_at(&views, crate::model::ExitPoint::Cloud).unwrap();
        let acc = crate::metrics::accuracy(&preds, &labels);
        assert!(acc > 0.8, "cloud train accuracy {acc}");
    }

    #[test]
    fn edge_model_trains() {
        let (views, labels) = toy_data(24, 2);
        let mut model = Ddnn::new(DdnnConfig {
            num_devices: 2,
            device_filters: 2,
            cloud_filters: [4, 8],
            edge: Some(EdgeConfig { filters: 4, agg: AggregationScheme::Concat }),
            ..DdnnConfig::default()
        });
        let cfg = TrainConfig { epochs: 5, batch_size: 12, ..TrainConfig::default() };
        let report = train(&mut model, &views, &labels, &cfg).unwrap();
        assert!(report.epochs.iter().all(|e| e.loss.is_finite()));
        assert!(report.epochs[0].edge_loss > 0.0);
    }

    #[test]
    fn exit_weights_are_respected() {
        // Zero weight on the local exit: the local loss should not improve
        // much relative to a jointly trained model.
        let (views, labels) = toy_data(24, 3);
        let mut cloud_only = small_model();
        let cfg = TrainConfig {
            epochs: 10,
            batch_size: 12,
            exit_weights: vec![0.0, 1.0],
            ..TrainConfig::default()
        };
        let r = train(&mut cloud_only, &views, &labels, &cfg).unwrap();
        let mut joint = small_model();
        let cfg2 = TrainConfig { epochs: 10, batch_size: 12, ..TrainConfig::default() };
        let r2 = train(&mut joint, &views, &labels, &cfg2).unwrap();
        let local_drop_zero = r.epochs[0].local_loss - r.epochs.last().unwrap().local_loss;
        let local_drop_joint = r2.epochs[0].local_loss - r2.epochs.last().unwrap().local_loss;
        assert!(
            local_drop_joint > local_drop_zero - 0.05,
            "joint training should improve local loss at least as much \
             (joint {local_drop_joint} vs zero-weight {local_drop_zero})"
        );
    }

    #[test]
    fn rejects_mismatched_sizes() {
        let (views, labels) = toy_data(10, 4);
        let mut model = small_model();
        let bad_labels = &labels[..5];
        assert!(train(&mut model, &views, bad_labels, &TrainConfig::quick(1)).is_err());
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = TrainConfig::paper();
        assert_eq!(cfg.epochs, 100);
        assert_eq!(cfg.lr, 0.001);
        assert!(cfg.exit_weights.is_empty(), "equal weights by default");
    }
}
