//! The distributed deep neural network model (paper §III, Fig. 2 and
//! Fig. 4): per-device sections, a local exit, an optional edge tier, and a
//! cloud exit, jointly trainable end to end.

use crate::aggregation::{AggregationScheme, FeatureAggregator, VectorAggregator};
use crate::block::{ConvPBlock, ExitHead, Precision};
use crate::entropy::{normalized_entropy_rows, ExitPolicy, ExitThreshold};
use ddnn_nn::{Layer, Mode, Param};
use ddnn_tensor::conv::Conv2dSpec;
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::{parallel, Result, Tensor, TensorError};

/// Input image geometry: the MVMC crops are 32×32 RGB.
pub const INPUT_CHANNELS: usize = 3;
/// Input spatial edge length.
pub const INPUT_SIZE: usize = 32;
/// Spatial edge length of a device's ConvP output (one pool halving).
pub const DEVICE_MAP_SIZE: usize = INPUT_SIZE / 2;
/// Pixel value substituted for the view of a failed or absent device — the
/// dataset's blank-grey encoding, which is what gives DDNN its automatic
/// fault tolerance (paper §IV-G).
pub const BLANK_INPUT_VALUE: f32 = 0.5;

/// Spatial edge length after one paper pool (3×3, stride 2, pad 1) over a
/// square `size`×`size` map, validated through
/// [`Conv2dSpec::checked_output_size`] so degenerate geometry panics here
/// with a typed [`TensorError`] message instead of silently mis-sizing an
/// exit head downstream.
fn pooled_size(size: usize) -> usize {
    let (oh, ow) = Conv2dSpec::paper_pool()
        .checked_output_size(size, size)
        .unwrap_or_else(|e| panic!("paper pool over {size}x{size}: {e}"));
    debug_assert_eq!(oh, ow, "square input pools to a square output");
    oh
}

/// Configuration of an optional edge (fog) tier between devices and cloud
/// (configurations (d)/(e) of Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeConfig {
    /// Filters in the edge ConvP block.
    pub filters: usize,
    /// How the edge aggregates per-device feature maps.
    pub agg: AggregationScheme,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig { filters: 16, agg: AggregationScheme::Concat }
    }
}

/// Full DDNN architecture configuration.
///
/// The default matches the paper's evaluation system (Fig. 4): six end
/// devices with 4-filter binary ConvP blocks, MP local aggregation, CC
/// cloud aggregation, no edge tier, and a two-ConvP cloud section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdnnConfig {
    /// Number of end devices `n`.
    pub num_devices: usize,
    /// Number of classes `|C|` (paper: 3).
    pub num_classes: usize,
    /// Filters `f` in each device's ConvP block (paper sweeps 1..=4).
    pub device_filters: usize,
    /// Local aggregation scheme over per-device class scores.
    pub local_agg: AggregationScheme,
    /// Cloud aggregation scheme over per-device feature maps.
    pub cloud_agg: AggregationScheme,
    /// Optional edge tier.
    pub edge: Option<EdgeConfig>,
    /// Filters of the two cloud ConvP blocks.
    pub cloud_filters: [usize; 2],
    /// Weight precision of the cloud section ([`Precision::Binary`] in the
    /// paper; [`Precision::Float`] for the §VI mixed-precision ablation).
    pub cloud_precision: Precision,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for DdnnConfig {
    fn default() -> Self {
        DdnnConfig {
            num_devices: 6,
            num_classes: 3,
            device_filters: 4,
            local_agg: AggregationScheme::MaxPool,
            cloud_agg: AggregationScheme::Concat,
            edge: None,
            cloud_filters: [16, 32],
            cloud_precision: Precision::Binary,
            seed: 42,
        }
    }
}

impl DdnnConfig {
    /// The paper's evaluated system (MP-CC, 6 devices, f = 4).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Paper system with a different local/cloud aggregation pair (the
    /// Table I sweep).
    pub fn with_aggregation(local: AggregationScheme, cloud: AggregationScheme) -> Self {
        DdnnConfig { local_agg: local, cloud_agg: cloud, ..Self::default() }
    }

    /// `(channels, height, width)` of one device's sensor view. Blank
    /// views and wire shapes must be derived from this (or from a live
    /// view), never from the CIFAR constants directly, so a model with a
    /// different input geometry keeps consistent blank signatures.
    pub fn view_dims(&self) -> [usize; 3] {
        [INPUT_CHANNELS, INPUT_SIZE, INPUT_SIZE]
    }

    /// `(filters, height, width)` of one device's ConvP output map — `f`
    /// maps of `o` bits each in the paper's Eq. 1.
    pub fn device_map_dims(&self) -> [usize; 3] {
        [self.device_filters, DEVICE_MAP_SIZE, DEVICE_MAP_SIZE]
    }

    /// Flattened width of one device's feature map.
    pub fn device_map_elems(&self) -> usize {
        let [f, h, w] = self.device_map_dims();
        f * h * w
    }

    /// Bits per filter of the device output (`o` in the paper's Eq. 1).
    pub fn output_bits_per_filter(&self) -> usize {
        DEVICE_MAP_SIZE * DEVICE_MAP_SIZE
    }
}

/// Where a sample exits the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitPoint {
    /// Classified by the local aggregator from device summaries only.
    Local,
    /// Classified at the edge tier.
    Edge,
    /// Classified in the cloud (the final exit: always classifies).
    Cloud,
}

/// Logits produced at each exit for a batch.
#[derive(Debug, Clone)]
pub struct ExitLogits {
    /// Local-exit logits `(n, classes)`.
    pub local: Tensor,
    /// Edge-exit logits, present when the model has an edge tier.
    pub edge: Option<Tensor>,
    /// Cloud-exit logits `(n, classes)`.
    pub cloud: Tensor,
}

/// Upstream gradients for each exit (same shapes as [`ExitLogits`]).
#[derive(Debug, Clone)]
pub struct ExitGrads {
    /// Gradient w.r.t. local logits.
    pub local: Tensor,
    /// Gradient w.r.t. edge logits (required iff the model has an edge).
    pub edge: Option<Tensor>,
    /// Gradient w.r.t. cloud logits.
    pub cloud: Tensor,
}

/// Per-sample result of staged DDNN inference.
#[derive(Debug, Clone)]
pub struct InferenceOutput {
    /// Predicted class per sample (from whichever exit classified it).
    pub predictions: Vec<usize>,
    /// The exit each sample took.
    pub exits: Vec<ExitPoint>,
    /// Normalized entropy at the local exit per sample.
    pub local_entropy: Vec<f32>,
    /// All exit logits (useful for analysis).
    pub logits: ExitLogits,
}

impl InferenceOutput {
    /// Fraction of samples exited at `point`.
    pub fn exit_fraction(&self, point: ExitPoint) -> f32 {
        if self.exits.is_empty() {
            return 0.0;
        }
        self.exits.iter().filter(|&&e| e == point).count() as f32 / self.exits.len() as f32
    }
}

#[derive(Clone)]
struct EdgeSection {
    agg: FeatureAggregator,
    conv: ConvPBlock,
    exit: ExitHead,
}

/// The jointly trained DDNN over `n` end devices and the cloud, with an
/// optional edge tier.
///
/// Structure (Fig. 4): each device runs a binary ConvP block producing a
/// ±1 feature map and a binary-weight exit head producing float class
/// scores. The local aggregator combines the score vectors for the local
/// exit. When a sample is offloaded, the (edge and) cloud aggregates the
/// per-device binary feature maps and runs further ConvP blocks before its
/// own exit.
///
/// Cloning yields an independent deep copy (weights, gradients and
/// batch-norm statistics) — the building block of sharded data-parallel
/// training in [`crate::train`].
#[derive(Clone)]
pub struct Ddnn {
    config: DdnnConfig,
    device_convs: Vec<ConvPBlock>,
    device_exits: Vec<ExitHead>,
    local_agg: VectorAggregator,
    edge: Option<EdgeSection>,
    cloud_agg: FeatureAggregator,
    cloud_convs: Vec<ConvPBlock>,
    cloud_exit: ExitHead,
}

impl std::fmt::Debug for Ddnn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ddnn").field("config", &self.config).finish_non_exhaustive()
    }
}

impl Ddnn {
    /// Builds a DDNN from a configuration (weights seeded by
    /// `config.seed`).
    pub fn new(config: DdnnConfig) -> Self {
        let mut rng = rng_from_seed(config.seed);
        let f = config.device_filters;
        let c = config.num_classes;
        let n = config.num_devices;
        let map_elems = config.device_map_elems();

        let device_convs: Vec<ConvPBlock> = (0..n)
            .map(|_| ConvPBlock::new(INPUT_CHANNELS, f, Precision::Binary, &mut rng))
            .collect();
        let device_exits: Vec<ExitHead> =
            (0..n).map(|_| ExitHead::new(map_elems, c, Precision::Binary, &mut rng)).collect();
        let local_agg = VectorAggregator::new(config.local_agg, n, c, &mut rng);

        // Spatial sizes after each cloud/edge ConvP pool, derived from the
        // actual pooling spec (not a hard-coded `/2`) so a degenerate
        // geometry shows up here as a typed `InvalidGeometry` error rather
        // than as a silently wrong exit-head width downstream.
        let half = pooled_size(DEVICE_MAP_SIZE); // 8
        let quarter = pooled_size(half); // 4
        let (edge, cloud_agg, cloud_convs, cloud_head_in) = if let Some(ec) = config.edge {
            let mut edge_agg = FeatureAggregator::new(ec.agg, n);
            let edge_in = edge_agg.output_channels(f);
            let _ = &mut edge_agg;
            let edge_conv = ConvPBlock::new(edge_in, ec.filters, config.cloud_precision, &mut rng);
            let edge_exit =
                ExitHead::new(ec.filters * half * half, c, config.cloud_precision, &mut rng);
            // Cloud consumes the single edge's output; no cross-device
            // aggregation remains at the cloud in configuration (d)/(e).
            let cloud_agg = FeatureAggregator::new(AggregationScheme::AvgPool, 1);
            let cloud_conv = ConvPBlock::new(
                ec.filters,
                config.cloud_filters[1],
                config.cloud_precision,
                &mut rng,
            );
            (
                Some(EdgeSection { agg: edge_agg, conv: edge_conv, exit: edge_exit }),
                cloud_agg,
                vec![cloud_conv],
                config.cloud_filters[1] * quarter * quarter,
            )
        } else {
            let mut cloud_agg = FeatureAggregator::new(config.cloud_agg, n);
            let cloud_in = cloud_agg.output_channels(f);
            let _ = &mut cloud_agg;
            let conv1 = ConvPBlock::new(
                cloud_in,
                config.cloud_filters[0],
                config.cloud_precision,
                &mut rng,
            );
            let conv2 = ConvPBlock::new(
                config.cloud_filters[0],
                config.cloud_filters[1],
                config.cloud_precision,
                &mut rng,
            );
            (None, cloud_agg, vec![conv1, conv2], config.cloud_filters[1] * quarter * quarter)
        };
        let cloud_exit = ExitHead::new(cloud_head_in, c, config.cloud_precision, &mut rng);

        Ddnn {
            config,
            device_convs,
            device_exits,
            local_agg,
            edge,
            cloud_agg,
            cloud_convs,
            cloud_exit,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &DdnnConfig {
        &self.config
    }

    /// Number of exit points (2, or 3 with an edge tier).
    pub fn num_exits(&self) -> usize {
        if self.edge.is_some() {
            3
        } else {
            2
        }
    }

    /// Serialized parameter bytes of one device's section (ConvP block +
    /// exit head) — must stay under the paper's 2 KB budget.
    pub fn device_memory_bytes(&self) -> usize {
        self.device_convs[0].memory_bytes() + self.device_exits[0].memory_bytes()
    }

    fn check_views(&self, views: &[Tensor]) -> Result<usize> {
        if views.len() != self.config.num_devices {
            return Err(TensorError::LengthMismatch {
                expected: self.config.num_devices,
                actual: views.len(),
            });
        }
        let n = views[0].dims()[0];
        for v in views {
            if v.rank() != 4 || v.dims() != [n, INPUT_CHANNELS, INPUT_SIZE, INPUT_SIZE] {
                return Err(TensorError::ShapeMismatch {
                    lhs: v.dims().to_vec(),
                    rhs: vec![n, INPUT_CHANNELS, INPUT_SIZE, INPUT_SIZE],
                    op: "ddnn.forward views",
                });
            }
        }
        Ok(n)
    }

    /// Runs all exits for a batch: `views[d]` is device `d`'s
    /// `(n, 3, 32, 32)` input batch.
    ///
    /// # Errors
    ///
    /// Returns an error if the view count or any view shape is wrong.
    pub fn forward(&mut self, views: &[Tensor], mode: Mode) -> Result<ExitLogits> {
        self.check_views(views)?;
        // Device sections: binary feature maps + per-device class scores.
        // The sections are independent, so they fan out across the worker
        // pool; results come back in device order regardless of thread
        // count.
        let mut sections: Vec<(&mut ConvPBlock, &mut ExitHead, &Tensor)> = self
            .device_convs
            .iter_mut()
            .zip(&mut self.device_exits)
            .zip(views)
            .map(|((c, e), v)| (c, e, v))
            .collect();
        let outputs = parallel::par_map_mut(&mut sections, |_, section| {
            let (conv, exit, view) = section;
            let map = conv.forward(view, mode)?;
            let scores = exit.forward(&map, mode)?;
            Ok::<(Tensor, Tensor), TensorError>((map, scores))
        });
        let mut maps = Vec::with_capacity(views.len());
        let mut scores = Vec::with_capacity(views.len());
        for out in outputs {
            let (map, score) = out?;
            maps.push(map);
            scores.push(score);
        }
        // Local exit.
        let local = self.local_agg.forward(&scores, mode)?;
        // Edge (optional) and cloud.
        let (edge_logits, mut x) = if let Some(edge) = &mut self.edge {
            let agg = edge.agg.forward(&maps)?;
            let e = edge.conv.forward(&agg, mode)?;
            let logits = edge.exit.forward(&e, mode)?;
            let cloud_in = self.cloud_agg.forward(&[e])?;
            (Some(logits), cloud_in)
        } else {
            (None, self.cloud_agg.forward(&maps)?)
        };
        for conv in &mut self.cloud_convs {
            x = conv.forward(&x, mode)?;
        }
        let cloud = self.cloud_exit.forward(&x, mode)?;
        Ok(ExitLogits { local, edge: edge_logits, cloud })
    }

    /// Backpropagates the joint multi-exit loss (paper §III-C): callers
    /// supply the gradient at each exit (already weighted), and this method
    /// sums the gradient contributions where branches share layers.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes are inconsistent with the last `forward`,
    /// or if an edge gradient is missing/spurious for this architecture.
    pub fn backward(&mut self, grads: &ExitGrads) -> Result<()> {
        if grads.edge.is_some() != self.edge.is_some() {
            return Err(TensorError::Empty { op: "ddnn.backward edge gradient arity" });
        }
        // Cloud branch down to the cloud aggregator input.
        let mut g = self.cloud_exit.backward(&grads.cloud)?;
        for conv in self.cloud_convs.iter_mut().rev() {
            // Exit heads flatten; restore the conv output shape first.
            g = reshape_like_output(&g, conv)?;
            g = conv.backward(&g)?;
        }
        // Gradient arriving at each device's feature map.
        let mut map_grads: Vec<Tensor> = if let Some(edge) = &mut self.edge {
            let g_edge_from_cloud = self.cloud_agg.backward(&g)?.remove(0);
            let edge_grad = grads.edge.as_ref().expect("checked above: edge gradient present");
            let mut g_e = edge.exit.backward(edge_grad)?;
            g_e = reshape_like_output(&g_e, &edge.conv)?;
            g_e.add_assign(&g_edge_from_cloud)?;
            let g_agg = edge.conv.backward(&g_e)?;
            edge.agg.backward(&g_agg)?
        } else {
            self.cloud_agg.backward(&g)?
        };
        // Local branch + shared trunks: each device's exit head backward,
        // gradient sum at its feature map, then its ConvP backward. The
        // per-device chains are independent (each accumulates only into its
        // own parameters), so they fan out across the worker pool with the
        // serial per-device instruction sequence intact.
        let score_grads = self.local_agg.backward(&grads.local)?;
        let mut sections: Vec<(&mut ExitHead, &mut ConvPBlock, &Tensor, &mut Tensor)> = self
            .device_exits
            .iter_mut()
            .zip(&mut self.device_convs)
            .zip(&score_grads)
            .zip(&mut map_grads)
            .map(|(((e, c), sg), mg)| (e, c, sg, mg))
            .collect();
        let results = parallel::par_map_mut(&mut sections, |_, section| {
            let (exit, conv, sg, mg) = section;
            let g_map_flat = exit.backward(sg)?;
            let g_map = g_map_flat.reshape(mg.dims().to_vec())?;
            mg.add_assign(&g_map)?;
            conv.backward(mg)?;
            Ok::<(), TensorError>(())
        });
        for r in results {
            r?;
        }
        Ok(())
    }

    /// All stateful blocks in a stable order (for checkpointing of
    /// batch-norm running statistics).
    pub(crate) fn blocks_mut(&mut self) -> Vec<&mut dyn Layer> {
        let mut bs: Vec<&mut dyn Layer> = Vec::new();
        for c in &mut self.device_convs {
            bs.push(c);
        }
        for e in &mut self.device_exits {
            bs.push(e);
        }
        if let Some(edge) = &mut self.edge {
            bs.push(&mut edge.conv);
            bs.push(&mut edge.exit);
        }
        for c in &mut self.cloud_convs {
            bs.push(c);
        }
        bs.push(&mut self.cloud_exit);
        bs
    }

    /// All trainable parameters in a stable order (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps: Vec<&mut Param> = Vec::new();
        for c in &mut self.device_convs {
            ps.extend(c.params_mut());
        }
        for e in &mut self.device_exits {
            ps.extend(e.params_mut());
        }
        ps.extend(self.local_agg.params_mut());
        if let Some(edge) = &mut self.edge {
            ps.extend(edge.conv.params_mut());
            ps.extend(edge.exit.params_mut());
        }
        for c in &mut self.cloud_convs {
            ps.extend(c.params_mut());
        }
        ps.extend(self.cloud_exit.params_mut());
        ps
    }

    /// Enables or disables the XNOR–popcount inference kernels on every
    /// block of the model (see [`Layer::set_bit_kernels`]). Both settings
    /// produce bit-identical outputs on binarized operands; the toggle
    /// exists so equivalence tests and benchmarks can run both paths on
    /// identical weights.
    pub fn set_bit_kernels(&mut self, enabled: bool) {
        for block in self.blocks_mut() {
            block.set_bit_kernels(enabled);
        }
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total scalar parameter count.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Re-estimates every batch-norm layer's running statistics by running
    /// forward passes (no parameter updates) over the given data with the
    /// *final* weights.
    ///
    /// Binarized networks need this: `sign(W)` flips discretely during
    /// training, so exponential running statistics collected along the
    /// trajectory describe a different network than the one that finished
    /// training; without a refresh, eval-mode accuracy collapses. The
    /// trainer calls this automatically after the last epoch.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed views.
    pub fn refresh_batch_norm_stats(
        &mut self,
        views: &[Tensor],
        batch_size: usize,
        passes: usize,
    ) -> Result<()> {
        let n = self.check_views(views)?;
        let bs = batch_size.max(1);
        for _ in 0..passes {
            let mut start = 0;
            while start < n {
                let idx: Vec<usize> = (start..(start + bs).min(n)).collect();
                let batch: Vec<Tensor> =
                    views.iter().map(|v| v.select_axis0(&idx)).collect::<Result<_>>()?;
                self.forward(&batch, Mode::Train)?;
                start += bs;
            }
        }
        Ok(())
    }

    /// Staged inference (paper §III-D): classify each sample at the
    /// earliest exit whose [`ExitPolicy`] claims it; the cloud's terminal
    /// policy always classifies what reaches it. The per-exit decisions are
    /// the exact [`ExitPolicy`] the distributed runtime's tier nodes run,
    /// so the in-process and simulated paths cannot drift apart.
    ///
    /// `edge_threshold` is ignored for models without an edge tier.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed views.
    pub fn infer(
        &mut self,
        views: &[Tensor],
        local_threshold: ExitThreshold,
        edge_threshold: Option<ExitThreshold>,
    ) -> Result<InferenceOutput> {
        let logits = self.forward(views, Mode::Eval)?;
        let local_eta = normalized_entropy_rows(&logits.local.softmax_rows()?)?;
        let local = ExitPolicy::Entropy(local_threshold).decide_rows(&logits.local)?;
        let edge = match &logits.edge {
            Some(e) => {
                Some(ExitPolicy::Entropy(edge_threshold.unwrap_or_default()).decide_rows(e)?)
            }
            None => None,
        };
        let cloud = ExitPolicy::Terminal.decide_rows(&logits.cloud)?;
        let mut predictions = Vec::with_capacity(cloud.len());
        let mut exits = Vec::with_capacity(cloud.len());
        for i in 0..cloud.len() {
            let (pred, exit) = if let Some(p) = local[i] {
                (p, ExitPoint::Local)
            } else if let Some(p) = edge.as_ref().and_then(|e| e[i]) {
                (p, ExitPoint::Edge)
            } else {
                (cloud[i].expect("terminal policy always classifies"), ExitPoint::Cloud)
            };
            predictions.push(pred);
            exits.push(exit);
        }
        Ok(InferenceOutput { predictions, exits, local_entropy: local_eta, logits })
    }

    /// Predictions when *all* samples exit at the given point (the paper's
    /// "Local/Edge/Cloud Accuracy" measures, §III-F).
    ///
    /// # Errors
    ///
    /// Returns an error on malformed views, or when asking for the edge
    /// exit of an edge-less model.
    pub fn predict_at(&mut self, views: &[Tensor], point: ExitPoint) -> Result<Vec<usize>> {
        let logits = self.forward(views, Mode::Eval)?;
        let t = match point {
            ExitPoint::Local => logits.local,
            ExitPoint::Cloud => logits.cloud,
            ExitPoint::Edge => logits.edge.ok_or(TensorError::Empty {
                op: "predict_at(Edge) on a model without an edge tier",
            })?,
        };
        t.softmax_rows()?.argmax_rows()
    }

    /// The binary feature maps each device would transmit for this batch —
    /// used by the runtime simulator and the communication accounting.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed views.
    pub fn device_feature_maps(&mut self, views: &[Tensor]) -> Result<Vec<Tensor>> {
        self.check_views(views)?;
        let mut sections: Vec<(&mut ConvPBlock, &Tensor)> =
            self.device_convs.iter_mut().zip(views).collect();
        parallel::par_map_mut(&mut sections, |_, section| {
            let (conv, v) = section;
            conv.forward(v, Mode::Eval)
        })
        .into_iter()
        .collect()
    }

    /// Per-device class scores (what each device sends to the local
    /// aggregator).
    ///
    /// # Errors
    ///
    /// Returns an error on malformed views.
    pub fn device_scores(&mut self, views: &[Tensor]) -> Result<Vec<Tensor>> {
        self.check_views(views)?;
        let mut sections: Vec<(&mut ConvPBlock, &mut ExitHead, &Tensor)> = self
            .device_convs
            .iter_mut()
            .zip(&mut self.device_exits)
            .zip(views)
            .map(|((c, e), v)| (c, e, v))
            .collect();
        parallel::par_map_mut(&mut sections, |_, section| {
            let (conv, exit, v) = section;
            let m = conv.forward(v, Mode::Eval)?;
            exit.forward(&m, Mode::Eval)
        })
        .into_iter()
        .collect()
    }
}

/// The portion of a DDNN deployed on one end device: its ConvP block and
/// exit classifier — together under 2 KB of weights (paper §IV-F).
#[derive(Debug, Clone)]
pub struct DevicePart {
    /// The device's fused binary convolution-pool block.
    pub conv: ConvPBlock,
    /// The device's exit classifier producing float class scores.
    pub exit: ExitHead,
}

/// The local aggregator deployed on the gateway between the devices and
/// the rest of the hierarchy.
#[derive(Debug, Clone)]
pub struct GatewayPart {
    /// Aggregates the per-device class-score vectors for the local exit.
    pub agg: VectorAggregator,
}

/// The edge (fog) tier section, if the architecture has one.
#[derive(Debug, Clone)]
pub struct EdgePart {
    /// Aggregates per-device binary feature maps.
    pub agg: FeatureAggregator,
    /// The edge's ConvP block.
    pub conv: ConvPBlock,
    /// The edge's exit classifier.
    pub exit: ExitHead,
}

/// The cloud section: feature aggregation, further ConvP blocks, final
/// exit.
#[derive(Debug, Clone)]
pub struct CloudPart {
    /// Aggregates incoming feature maps (per-device, or the single edge
    /// output for edge architectures).
    pub agg: FeatureAggregator,
    /// The cloud ConvP stack.
    pub convs: Vec<ConvPBlock>,
    /// The final exit classifier (always classifies).
    pub exit: ExitHead,
}

/// A DDNN split along its physical deployment boundaries, ready to be
/// placed on separate nodes of a distributed hierarchy (what the
/// `ddnn-runtime` simulator executes).
#[derive(Debug, Clone)]
pub struct DdnnPartition {
    /// Architecture configuration the partition came from.
    pub config: DdnnConfig,
    /// One part per end device.
    pub devices: Vec<DevicePart>,
    /// The local aggregator.
    pub gateway: GatewayPart,
    /// The edge tier (if configured).
    pub edge: Option<EdgePart>,
    /// The cloud section.
    pub cloud: CloudPart,
}

impl Ddnn {
    /// Splits the (trained) model along its deployment boundaries: one
    /// [`DevicePart`] per end device, the gateway's local aggregator, the
    /// optional edge section and the cloud section.
    ///
    /// The parts are deep copies; the original model remains usable.
    pub fn partition(&self) -> DdnnPartition {
        DdnnPartition {
            config: self.config.clone(),
            devices: self
                .device_convs
                .iter()
                .zip(&self.device_exits)
                .map(|(conv, exit)| DevicePart { conv: conv.clone(), exit: exit.clone() })
                .collect(),
            gateway: GatewayPart { agg: self.local_agg.clone() },
            edge: self.edge.as_ref().map(|e| EdgePart {
                agg: e.agg.clone(),
                conv: e.conv.clone(),
                exit: e.exit.clone(),
            }),
            cloud: CloudPart {
                agg: self.cloud_agg.clone(),
                convs: self.cloud_convs.clone(),
                exit: self.cloud_exit.clone(),
            },
        }
    }
}

/// Restores a flattened gradient `(n, c*h*w)` to the NCHW shape a ConvP
/// block produced — the glue between exit heads (which flatten) and conv
/// blocks.
fn reshape_like_output(g: &Tensor, conv: &ConvPBlock) -> Result<Tensor> {
    if g.rank() == 4 {
        return Ok(g.clone());
    }
    let n = g.dims()[0];
    let c = conv.filters();
    let hw = g.len() / (n * c);
    let side = (hw as f32).sqrt().round() as usize;
    g.reshape([n, c, side, side])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddnn_tensor::rng::rng_from_seed;

    #[test]
    fn map_sizes_follow_the_pool_spec() {
        // The device-map constant and the cloud-section halvings must agree
        // with what the paper's pooling geometry actually produces.
        assert_eq!(pooled_size(INPUT_SIZE), DEVICE_MAP_SIZE);
        assert_eq!(pooled_size(DEVICE_MAP_SIZE), 8);
        assert_eq!(pooled_size(8), 4);
    }

    fn small_config() -> DdnnConfig {
        DdnnConfig {
            num_devices: 2,
            device_filters: 2,
            cloud_filters: [4, 8],
            ..DdnnConfig::default()
        }
    }

    fn random_views(n: usize, devices: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = rng_from_seed(seed);
        (0..devices).map(|_| Tensor::rand_uniform([n, 3, 32, 32], 0.0, 1.0, &mut rng)).collect()
    }

    #[test]
    fn forward_shapes() {
        let mut m = Ddnn::new(small_config());
        let views = random_views(3, 2, 0);
        let out = m.forward(&views, Mode::Train).unwrap();
        assert_eq!(out.local.dims(), &[3, 3]);
        assert_eq!(out.cloud.dims(), &[3, 3]);
        assert!(out.edge.is_none());
        assert_eq!(m.num_exits(), 2);
    }

    #[test]
    fn forward_rejects_bad_views() {
        let mut m = Ddnn::new(small_config());
        assert!(m.forward(&random_views(3, 1, 0), Mode::Train).is_err());
        let bad = vec![Tensor::zeros([3, 3, 16, 16]), Tensor::zeros([3, 3, 16, 16])];
        assert!(m.forward(&bad, Mode::Train).is_err());
    }

    #[test]
    fn backward_runs_and_produces_grads() {
        let mut m = Ddnn::new(small_config());
        let views = random_views(2, 2, 1);
        let out = m.forward(&views, Mode::Train).unwrap();
        m.zero_grad();
        m.backward(&ExitGrads {
            local: Tensor::ones(out.local.dims().to_vec()),
            edge: None,
            cloud: Tensor::ones(out.cloud.dims().to_vec()),
        })
        .unwrap();
        let total_grad: f32 = m.params_mut().iter().map(|p| p.grad.norm_sq()).sum();
        assert!(total_grad > 0.0, "joint backward must reach parameters");
        assert!(m.params_mut().iter().all(|p| p.grad.all_finite()));
    }

    #[test]
    fn backward_edge_arity_checked() {
        let mut m = Ddnn::new(small_config());
        let views = random_views(2, 2, 1);
        let out = m.forward(&views, Mode::Train).unwrap();
        let bad = ExitGrads {
            local: Tensor::ones(out.local.dims().to_vec()),
            edge: Some(Tensor::ones([2, 3])),
            cloud: Tensor::ones(out.cloud.dims().to_vec()),
        };
        assert!(m.backward(&bad).is_err());
    }

    #[test]
    fn edge_model_has_three_exits() {
        let cfg = DdnnConfig {
            edge: Some(EdgeConfig { filters: 4, agg: AggregationScheme::Concat }),
            ..small_config()
        };
        let mut m = Ddnn::new(cfg);
        assert_eq!(m.num_exits(), 3);
        let views = random_views(2, 2, 2);
        let out = m.forward(&views, Mode::Train).unwrap();
        let e = out.edge.as_ref().expect("edge logits present");
        assert_eq!(e.dims(), &[2, 3]);
        m.zero_grad();
        m.backward(&ExitGrads {
            local: Tensor::ones([2, 3]),
            edge: Some(Tensor::ones([2, 3])),
            cloud: Tensor::ones([2, 3]),
        })
        .unwrap();
        assert!(m.params_mut().iter().all(|p| p.grad.all_finite()));
    }

    #[test]
    fn paper_config_device_memory_under_2kb() {
        let mut m = Ddnn::new(DdnnConfig::paper());
        assert!(m.device_memory_bytes() < 2048, "{} bytes", m.device_memory_bytes());
        assert!(m.param_count() > 0);
    }

    #[test]
    fn infer_partitions_batch_between_exits() {
        let mut m = Ddnn::new(small_config());
        let views = random_views(8, 2, 3);
        // T=1: everything exits locally. T=0: everything goes to cloud.
        let all_local = m.infer(&views, ExitThreshold::new(1.0), None).unwrap();
        assert_eq!(all_local.exit_fraction(ExitPoint::Local), 1.0);
        let all_cloud = m.infer(&views, ExitThreshold::new(0.0), None).unwrap();
        assert!(all_cloud.exit_fraction(ExitPoint::Cloud) > 0.99);
        assert_eq!(all_cloud.predictions.len(), 8);
        assert!(all_cloud.local_entropy.iter().all(|&e| (0.0..=1.0).contains(&e)));
    }

    #[test]
    fn infer_predictions_match_exit_choice() {
        let mut m = Ddnn::new(small_config());
        let views = random_views(6, 2, 4);
        let out = m.infer(&views, ExitThreshold::new(0.5), None).unwrap();
        let local_pred = m.predict_at(&views, ExitPoint::Local).unwrap();
        let cloud_pred = m.predict_at(&views, ExitPoint::Cloud).unwrap();
        for i in 0..6 {
            match out.exits[i] {
                ExitPoint::Local => assert_eq!(out.predictions[i], local_pred[i]),
                ExitPoint::Cloud => assert_eq!(out.predictions[i], cloud_pred[i]),
                ExitPoint::Edge => unreachable!("no edge in this model"),
            }
        }
    }

    #[test]
    fn predict_at_edge_requires_edge() {
        let mut m = Ddnn::new(small_config());
        let views = random_views(2, 2, 5);
        assert!(m.predict_at(&views, ExitPoint::Edge).is_err());
    }

    #[test]
    fn feature_maps_are_binary_and_correct_shape() {
        let mut m = Ddnn::new(small_config());
        let views = random_views(2, 2, 6);
        let maps = m.device_feature_maps(&views).unwrap();
        assert_eq!(maps.len(), 2);
        assert_eq!(maps[0].dims(), &[2, 2, 16, 16]);
        assert!(maps[0].data().iter().all(|&v| v == 1.0 || v == -1.0));
        let scores = m.device_scores(&views).unwrap();
        assert_eq!(scores[0].dims(), &[2, 3]);
    }

    #[test]
    fn same_seed_same_model() {
        let mut a = Ddnn::new(small_config());
        let mut b = Ddnn::new(small_config());
        let views = random_views(2, 2, 7);
        let oa = a.forward(&views, Mode::Eval).unwrap();
        let ob = b.forward(&views, Mode::Eval).unwrap();
        assert_eq!(oa.cloud, ob.cloud);
    }

    #[test]
    fn bit_kernel_toggle_is_bit_exact_end_to_end() {
        // Every binarized block routed through the XNOR kernels must
        // produce the same bytes as the f32 sign path — the property that
        // makes the bit path safe to enable by default.
        let mut m = Ddnn::new(small_config());
        let views = random_views(3, 2, 8);
        let fast = m.forward(&views, Mode::Eval).unwrap();
        m.set_bit_kernels(false);
        let slow = m.forward(&views, Mode::Eval).unwrap();
        assert_eq!(fast.local, slow.local);
        assert_eq!(fast.cloud, slow.cloud);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = Ddnn::new(small_config());
        let mut b = a.clone();
        let views = random_views(2, 2, 9);
        // Same weights: same outputs.
        let oa = a.forward(&views, Mode::Eval).unwrap();
        let ob = b.forward(&views, Mode::Eval).unwrap();
        assert_eq!(oa.cloud, ob.cloud);
        // Training the clone accumulates gradients only in the clone.
        b.zero_grad();
        a.zero_grad();
        b.forward(&views, Mode::Train).unwrap();
        b.backward(&ExitGrads {
            local: Tensor::ones([2, 3]),
            edge: None,
            cloud: Tensor::ones([2, 3]),
        })
        .unwrap();
        let ga: f32 = a.params_mut().iter().map(|p| p.grad.norm_sq()).sum();
        let gb: f32 = b.params_mut().iter().map(|p| p.grad.norm_sq()).sum();
        assert_eq!(ga, 0.0, "original must be untouched by the clone's backward");
        assert!(gb > 0.0);
    }

    #[test]
    fn cc_cloud_aggregation_changes_cloud_input_width() {
        let cc =
            DdnnConfig::with_aggregation(AggregationScheme::MaxPool, AggregationScheme::Concat);
        let mp =
            DdnnConfig::with_aggregation(AggregationScheme::MaxPool, AggregationScheme::MaxPool);
        // Parameter counts differ because CC's first cloud conv consumes
        // n*f channels instead of f.
        let mut mcc = Ddnn::new(cc);
        let mut mmp = Ddnn::new(mp);
        assert!(mcc.param_count() > mmp.param_count());
    }
}
