//! The communication-cost model of paper §III-E (Eq. 1) and the raw-offload
//! baseline of §IV-H.

use crate::model::DdnnConfig;

/// Bytes of one raw 32×32 RGB view — what the cloud-offload baseline sends
/// per sample (paper §IV-H: 3072 bytes).
pub const RAW_IMAGE_BYTES: usize = 3 * 32 * 32;

/// Eq. 1 of the paper: the average per-sample communication cost of one end
/// device,
///
/// `c = 4·|C| + (1 − l)·f·o/8` bytes,
///
/// where `l` is the fraction of samples exited locally, `|C|` the number of
/// classes, `f` the device's filter count and `o` the bits per filter of
/// its final layer output. The first term is the float class-score vector
/// sent to the local aggregator for *every* sample; the second is the
/// bit-packed binary feature map sent to the cloud for the `(1 − l)`
/// fraction that is offloaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommCostModel {
    /// Number of classes `|C|`.
    pub num_classes: usize,
    /// Device filters `f`.
    pub filters: usize,
    /// Output bits per filter `o` (16×16 = 256 for one ConvP on 32×32).
    pub bits_per_filter: usize,
}

impl CommCostModel {
    /// Builds the cost model for a DDNN configuration.
    pub fn from_config(config: &DdnnConfig) -> Self {
        CommCostModel {
            num_classes: config.num_classes,
            filters: config.device_filters,
            bits_per_filter: config.output_bits_per_filter(),
        }
    }

    /// Bytes of the always-sent class-score vector (`4·|C|`).
    pub fn summary_bytes(&self) -> usize {
        4 * self.num_classes
    }

    /// Bytes of one bit-packed feature map (`f·o/8`).
    pub fn feature_map_bytes(&self) -> usize {
        (self.filters * self.bits_per_filter).div_ceil(8)
    }

    /// Eq. 1: expected per-sample bytes for one device, given the local
    /// exit rate `l ∈ [0, 1]`.
    pub fn bytes_per_sample(&self, local_exit_fraction: f32) -> f32 {
        let l = local_exit_fraction.clamp(0.0, 1.0);
        self.summary_bytes() as f32 + (1.0 - l) * self.feature_map_bytes() as f32
    }

    /// The §IV-H headline: how many times cheaper DDNN is than offloading
    /// the raw view to the cloud.
    pub fn reduction_factor(&self, local_exit_fraction: f32) -> f32 {
        RAW_IMAGE_BYTES as f32 / self.bytes_per_sample(local_exit_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> CommCostModel {
        CommCostModel::from_config(&DdnnConfig::paper())
    }

    #[test]
    fn paper_constants() {
        let m = paper_model();
        assert_eq!(m.summary_bytes(), 12); // 4 bytes x 3 classes
        assert_eq!(m.feature_map_bytes(), 128); // 4 filters x 256 bits / 8
        assert_eq!(RAW_IMAGE_BYTES, 3072);
    }

    #[test]
    fn table2_endpoints() {
        // Table II: T=0.1 -> l=0 -> 140 B; T=1.0 -> l=1 -> 12 B.
        let m = paper_model();
        assert_eq!(m.bytes_per_sample(0.0), 140.0);
        assert_eq!(m.bytes_per_sample(1.0), 12.0);
    }

    #[test]
    fn table2_operating_point() {
        // T=0.8 -> l=60.82% -> ~62 B (paper Table II).
        let m = paper_model();
        let c = m.bytes_per_sample(0.6082);
        assert!((c - 62.0).abs() < 1.0, "c={c}");
    }

    #[test]
    fn cost_is_monotone_decreasing_in_local_exit_rate() {
        let m = paper_model();
        let mut prev = f32::INFINITY;
        for i in 0..=10 {
            let c = m.bytes_per_sample(i as f32 / 10.0);
            assert!(c <= prev);
            prev = c;
        }
    }

    #[test]
    fn reduction_exceeds_20x_even_with_no_local_exits() {
        // §IV-H: 3072 / 140 > 20 — the paper's headline holds already at
        // l = 0 for the largest device model.
        let m = paper_model();
        assert!(m.reduction_factor(0.0) > 20.0);
        assert!(m.reduction_factor(0.6082) > 49.0);
    }

    #[test]
    fn fraction_is_clamped() {
        let m = paper_model();
        assert_eq!(m.bytes_per_sample(-1.0), m.bytes_per_sample(0.0));
        assert_eq!(m.bytes_per_sample(2.0), m.bytes_per_sample(1.0));
    }

    #[test]
    fn scales_with_filters() {
        let mut cfg = DdnnConfig::paper();
        cfg.device_filters = 1;
        let m1 = CommCostModel::from_config(&cfg);
        assert_eq!(m1.feature_map_bytes(), 32);
        assert_eq!(m1.bytes_per_sample(0.0), 44.0);
    }
}
