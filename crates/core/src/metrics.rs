//! Accuracy measures (paper §III-F): local / edge / cloud / overall.

use crate::entropy::ExitThreshold;
use crate::model::{Ddnn, ExitPoint};
use ddnn_tensor::{Result, Tensor};

/// Fraction of predictions equal to the labels.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(predictions.len(), labels.len(), "predictions/labels length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

/// Accuracy when 100% of samples exit at each point (paper §III-F "Local /
/// Edge / Cloud Accuracy").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExitAccuracies {
    /// Accuracy exiting everything at the local aggregator.
    pub local: f32,
    /// Accuracy exiting everything at the edge (if the model has one).
    pub edge: Option<f32>,
    /// Accuracy exiting everything in the cloud.
    pub cloud: f32,
}

/// Evaluates the forced-exit accuracies on a labeled set.
///
/// # Errors
///
/// Returns an error on malformed views.
pub fn evaluate_exit_accuracies(
    model: &mut Ddnn,
    views: &[Tensor],
    labels: &[usize],
) -> Result<ExitAccuracies> {
    let local = accuracy(&model.predict_at(views, ExitPoint::Local)?, labels);
    let cloud = accuracy(&model.predict_at(views, ExitPoint::Cloud)?, labels);
    let edge = if model.num_exits() == 3 {
        Some(accuracy(&model.predict_at(views, ExitPoint::Edge)?, labels))
    } else {
        None
    };
    Ok(ExitAccuracies { local, edge, cloud })
}

/// The paper's "Overall Accuracy": staged inference with entropy
/// thresholds, plus where samples exited.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverallEvaluation {
    /// Accuracy of the staged system.
    pub accuracy: f32,
    /// Fraction of samples exited locally (`l` in Eq. 1).
    pub local_exit_fraction: f32,
    /// Fraction exited at the edge.
    pub edge_exit_fraction: f32,
    /// Fraction exited in the cloud.
    pub cloud_exit_fraction: f32,
}

/// Runs staged inference and scores it.
///
/// # Errors
///
/// Returns an error on malformed views.
pub fn evaluate_overall(
    model: &mut Ddnn,
    views: &[Tensor],
    labels: &[usize],
    local_threshold: ExitThreshold,
    edge_threshold: Option<ExitThreshold>,
) -> Result<OverallEvaluation> {
    let out = model.infer(views, local_threshold, edge_threshold)?;
    Ok(OverallEvaluation {
        accuracy: accuracy(&out.predictions, labels),
        local_exit_fraction: out.exit_fraction(ExitPoint::Local),
        edge_exit_fraction: out.exit_fraction(ExitPoint::Edge),
        cloud_exit_fraction: out.exit_fraction(ExitPoint::Cloud),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DdnnConfig;
    use ddnn_tensor::rng::rng_from_seed;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 2]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[0, 1, 2]), 1.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn exit_fractions_sum_to_one() {
        let mut rng = rng_from_seed(0);
        let mut model = Ddnn::new(DdnnConfig {
            num_devices: 2,
            device_filters: 2,
            cloud_filters: [4, 8],
            ..DdnnConfig::default()
        });
        let views: Vec<Tensor> =
            (0..2).map(|_| Tensor::rand_uniform([10, 3, 32, 32], 0.0, 1.0, &mut rng)).collect();
        let labels = vec![0usize; 10];
        let eval =
            evaluate_overall(&mut model, &views, &labels, ExitThreshold::new(0.5), None).unwrap();
        let total = eval.local_exit_fraction + eval.edge_exit_fraction + eval.cloud_exit_fraction;
        assert!((total - 1.0).abs() < 1e-6);
        assert!((0.0..=1.0).contains(&eval.accuracy));
    }

    #[test]
    fn forced_exit_accuracies_are_probabilities() {
        let mut rng = rng_from_seed(1);
        let mut model = Ddnn::new(DdnnConfig {
            num_devices: 2,
            device_filters: 2,
            cloud_filters: [4, 8],
            ..DdnnConfig::default()
        });
        let views: Vec<Tensor> =
            (0..2).map(|_| Tensor::rand_uniform([6, 3, 32, 32], 0.0, 1.0, &mut rng)).collect();
        let labels = vec![1usize; 6];
        let accs = evaluate_exit_accuracies(&mut model, &views, &labels).unwrap();
        assert!((0.0..=1.0).contains(&accs.local));
        assert!((0.0..=1.0).contains(&accs.cloud));
        assert!(accs.edge.is_none());
    }
}
