//! Device-failure injection (paper §IV-G).
//!
//! A failed end device simply stops contributing: its view is replaced by
//! the blank frame the dataset already uses for "object not present". The
//! jointly trained aggregators were trained on exactly this encoding, which
//! is what makes DDNN's fault tolerance automatic.

use crate::model::BLANK_INPUT_VALUE;
use ddnn_tensor::{Result, Tensor, TensorError};

/// Returns a copy of the per-device view batches with the given devices
/// failed (their batches replaced by blank frames).
///
/// # Errors
///
/// Returns an error if a failed index is out of range.
pub fn fail_devices(views: &[Tensor], failed: &[usize]) -> Result<Vec<Tensor>> {
    fail_devices_with(views, failed, BLANK_INPUT_VALUE)
}

/// Like [`fail_devices`] but substituting an arbitrary constant input for
/// failed devices — used by the failure-encoding ablation (`DESIGN.md`
/// §6): substituting zeros instead of the dataset's blank grey puts the
/// aggregators in a regime they never saw during training.
///
/// # Errors
///
/// Returns an error if a failed index is out of range.
pub fn fail_devices_with(views: &[Tensor], failed: &[usize], value: f32) -> Result<Vec<Tensor>> {
    for &d in failed {
        if d >= views.len() {
            return Err(TensorError::IndexOutOfBounds { index: vec![d], shape: vec![views.len()] });
        }
    }
    Ok(views
        .iter()
        .enumerate()
        .map(|(d, v)| {
            if failed.contains(&d) {
                // Same shape as the view it replaces, whatever the model's
                // input geometry.
                Tensor::full(v.dims().to_vec(), value)
            } else {
                v.clone()
            }
        })
        .collect())
}

/// All single-device failure scenarios for `num_devices` devices — the
/// x-axis of the paper's Fig. 10.
pub fn single_failures(num_devices: usize) -> Vec<Vec<usize>> {
    (0..num_devices).map(|d| vec![d]).collect()
}

/// Progressive multi-device failure scenarios: fail the first `k` devices
/// of `order` for `k = 1..=order.len()` (the §IV-G "gradually degrades"
/// reading of Fig. 8).
pub fn progressive_failures(order: &[usize]) -> Vec<Vec<usize>> {
    (1..=order.len()).map(|k| order[..k].to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(n: usize) -> Vec<Tensor> {
        (0..3).map(|d| Tensor::full([n, 3, 32, 32], d as f32 * 0.1)).collect()
    }

    #[test]
    fn failed_device_becomes_blank() {
        let v = views(2);
        let out = fail_devices(&v, &[1]).unwrap();
        assert_eq!(out[0], v[0]);
        assert!(out[1].data().iter().all(|&x| x == BLANK_INPUT_VALUE));
        assert_eq!(out[2], v[2]);
        assert_eq!(out[1].dims(), &[2, 3, 32, 32]);
    }

    #[test]
    fn fail_with_custom_value() {
        let v = views(1);
        let out = fail_devices_with(&v, &[0], 0.0).unwrap();
        assert!(out[0].data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn no_failures_is_identity() {
        let v = views(1);
        let out = fail_devices(&v, &[]).unwrap();
        assert_eq!(out, v);
    }

    #[test]
    fn multiple_failures() {
        let v = views(1);
        let out = fail_devices(&v, &[0, 2]).unwrap();
        assert!(out[0].data().iter().all(|&x| x == BLANK_INPUT_VALUE));
        assert_eq!(out[1], v[1]);
        assert!(out[2].data().iter().all(|&x| x == BLANK_INPUT_VALUE));
    }

    #[test]
    fn out_of_range_failure_errors() {
        let v = views(1);
        assert!(fail_devices(&v, &[3]).is_err());
    }

    #[test]
    fn single_failures_enumerates_each_device() {
        let f = single_failures(6);
        assert_eq!(f.len(), 6);
        assert_eq!(f[0], vec![0]);
        assert_eq!(f[5], vec![5]);
    }

    #[test]
    fn progressive_failures_grow() {
        let f = progressive_failures(&[2, 0, 1]);
        assert_eq!(f, vec![vec![2], vec![2, 0], vec![2, 0, 1]]);
    }

    #[test]
    fn blank_matches_dataset_encoding() {
        // The fault encoding must equal the dataset's not-present frames;
        // both use the same grey level.
        assert_eq!(BLANK_INPUT_VALUE, 0.5);
    }
}
