//! The paper's fused binary blocks (Fig. 3): ConvP and FC.

use ddnn_nn::{BatchNorm, BinaryActivation, Conv2d, Layer, Linear, MaxPool2d, Mode, Param};
use ddnn_tensor::conv::Conv2dSpec;
use ddnn_tensor::{Result, Tensor};
use rand::Rng;

/// Numeric precision of a block's weights.
///
/// The paper uses binary blocks everywhere; [`Precision::Float`] exists for
/// the mixed-precision ablation it proposes as future work (§VI), where the
/// cloud keeps float weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// BinaryConnect 1-bit weights (the paper's configuration).
    #[default]
    Binary,
    /// 32-bit float weights.
    Float,
}

/// The fused binary convolution-pool block of Fig. 3:
/// 3×3 conv (stride 1, pad 1) → 3×3 pool (stride 2, pad 1) → batch norm →
/// binary activation. Output spatial size is half the input; output values
/// are ±1 (1 bit each on the wire).
#[derive(Debug, Clone)]
pub struct ConvPBlock {
    conv: Conv2d,
    pool: MaxPool2d,
    bn: BatchNorm,
    act: BinaryActivation,
    in_channels: usize,
    filters: usize,
}

impl ConvPBlock {
    /// Creates a ConvP block with `filters` output filters.
    pub fn new(
        in_channels: usize,
        filters: usize,
        precision: Precision,
        rng: &mut impl Rng,
    ) -> Self {
        let spec = Conv2dSpec::paper_conv();
        let conv = match precision {
            Precision::Binary => Conv2d::binarized(in_channels, filters, spec, rng),
            Precision::Float => Conv2d::new(in_channels, filters, spec, rng),
        };
        ConvPBlock {
            conv,
            pool: MaxPool2d::paper(),
            bn: BatchNorm::new(filters),
            act: BinaryActivation::new(),
            in_channels,
            filters,
        }
    }

    /// Number of output filters `f`.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Serialized parameter size in bytes (binary conv weights + float BN
    /// parameters) — the quantity bounded by the paper's 2 KB device
    /// budget.
    pub fn memory_bytes(&self) -> usize {
        self.conv.memory_bytes() + self.bn.memory_bytes()
    }
}

impl Layer for ConvPBlock {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let x = self.conv.forward(input, mode)?;
        let x = self.pool.forward(&x, mode)?;
        let x = self.bn.forward(&x, mode)?;
        self.act.forward(&x, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let g = self.act.backward(grad_output)?;
        let g = self.bn.backward(&g)?;
        let g = self.pool.backward(&g)?;
        self.conv.backward(&g)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.conv.params_mut();
        ps.extend(self.bn.params_mut());
        ps
    }

    fn describe(&self) -> String {
        format!("ConvP({} -> {})", self.in_channels, self.filters)
    }

    fn extra_state(&self) -> Vec<f32> {
        self.bn.extra_state()
    }

    fn load_extra_state(&mut self, state: &[f32]) -> Result<()> {
        self.bn.load_extra_state(state)
    }

    fn set_bit_kernels(&mut self, enabled: bool) {
        self.conv.set_bit_kernels(enabled);
    }
}

/// The fused binary fully-connected block of Fig. 3:
/// binary linear → batch norm → binary activation.
#[derive(Debug, Clone)]
pub struct FcBlock {
    linear: Linear,
    bn: BatchNorm,
    act: BinaryActivation,
}

impl FcBlock {
    /// Creates an FC block with `out_features` nodes.
    pub fn new(
        in_features: usize,
        out_features: usize,
        precision: Precision,
        rng: &mut impl Rng,
    ) -> Self {
        let linear = match precision {
            Precision::Binary => Linear::binarized(in_features, out_features, rng),
            Precision::Float => Linear::new(in_features, out_features, false, rng),
        };
        FcBlock { linear, bn: BatchNorm::new(out_features), act: BinaryActivation::new() }
    }

    /// Serialized parameter size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.linear.memory_bytes() + self.bn.memory_bytes()
    }
}

impl Layer for FcBlock {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let x = self.linear.forward(input, mode)?;
        let x = self.bn.forward(&x, mode)?;
        self.act.forward(&x, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let g = self.act.backward(grad_output)?;
        let g = self.bn.backward(&g)?;
        self.linear.backward(&g)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.linear.params_mut();
        ps.extend(self.bn.params_mut());
        ps
    }

    fn describe(&self) -> String {
        format!("FC[{}]", self.linear.describe())
    }

    fn extra_state(&self) -> Vec<f32> {
        self.bn.extra_state()
    }

    fn load_extra_state(&mut self, state: &[f32]) -> Result<()> {
        self.bn.load_extra_state(state)
    }

    fn set_bit_kernels(&mut self, enabled: bool) {
        self.linear.set_bit_kernels(enabled);
    }
}

/// An exit head: the paper's FC block *without* the final binary
/// activation — a binary-weight linear layer followed by batch norm,
/// producing *float* class scores.
///
/// The paper's local aggregator consumes "a floating-point vector of length
/// equal to the number of classes ... the output from the final FC block"
/// (§IV-C): real-valued scores, 1-bit weights. The batch-norm stage is
/// essential — without it the scores are sums of hundreds of ±1 products
/// whose magnitude saturates the softmax, collapsing every sample's
/// normalized entropy to ~0 and making the exit threshold useless.
#[derive(Debug, Clone)]
pub struct ExitHead {
    linear: Linear,
    bn: BatchNorm,
    classes: usize,
}

impl ExitHead {
    /// Creates an exit head mapping `in_features` to `classes` scores.
    pub fn new(
        in_features: usize,
        classes: usize,
        precision: Precision,
        rng: &mut impl Rng,
    ) -> Self {
        let linear = match precision {
            Precision::Binary => Linear::binarized(in_features, classes, rng),
            Precision::Float => Linear::new(in_features, classes, true, rng),
        };
        ExitHead { linear, bn: BatchNorm::new(classes), classes }
    }

    /// Number of classes scored.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Serialized parameter size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.linear.memory_bytes() + self.bn.memory_bytes()
    }
}

impl Layer for ExitHead {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let x = self.linear.forward(input, mode)?;
        self.bn.forward(&x, mode)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let g = self.bn.backward(grad_output)?;
        self.linear.backward(&g)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.linear.params_mut();
        ps.extend(self.bn.params_mut());
        ps
    }

    fn describe(&self) -> String {
        format!("ExitHead[{} -> bn]", self.linear.describe())
    }

    fn extra_state(&self) -> Vec<f32> {
        self.bn.extra_state()
    }

    fn load_extra_state(&mut self, state: &[f32]) -> Result<()> {
        self.bn.load_extra_state(state)
    }

    fn set_bit_kernels(&mut self, enabled: bool) {
        self.linear.set_bit_kernels(enabled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddnn_tensor::rng::rng_from_seed;

    #[test]
    fn convp_halves_spatial_size_and_binarizes() {
        let mut rng = rng_from_seed(0);
        let mut block = ConvPBlock::new(3, 4, Precision::Binary, &mut rng);
        let x = Tensor::randn([2, 3, 32, 32], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 4, 16, 16]);
        assert!(y.data().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn convp_backward_shape_round_trip() {
        let mut rng = rng_from_seed(1);
        let mut block = ConvPBlock::new(3, 4, Precision::Binary, &mut rng);
        let x = Tensor::randn([2, 3, 32, 32], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        let gin = block.backward(&Tensor::ones(y.dims().to_vec())).unwrap();
        assert_eq!(gin.dims(), x.dims());
        assert!(gin.all_finite());
    }

    #[test]
    fn convp_params_are_conv_plus_bn() {
        let mut rng = rng_from_seed(2);
        let mut block = ConvPBlock::new(3, 4, Precision::Binary, &mut rng);
        assert_eq!(block.params_mut().len(), 3); // conv.w, bn.gamma, bn.beta
    }

    #[test]
    fn paper_device_block_fits_in_2kb() {
        // Device section = ConvP(3->f) + exit head (f*16*16 -> 3). For all
        // f used in Fig. 9 (1..=4) this is under 2 KB as the paper states.
        let mut rng = rng_from_seed(3);
        for f in 1..=4 {
            let conv = ConvPBlock::new(3, f, Precision::Binary, &mut rng);
            let head = ExitHead::new(f * 16 * 16, 3, Precision::Binary, &mut rng);
            let total = conv.memory_bytes() + head.memory_bytes();
            assert!(total < 2048, "f={f}: {total} bytes");
        }
    }

    #[test]
    fn fc_block_binarizes_output() {
        let mut rng = rng_from_seed(4);
        let mut block = FcBlock::new(16, 8, Precision::Binary, &mut rng);
        let x = Tensor::randn([4, 16], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[4, 8]);
        assert!(y.data().iter().all(|&v| v == 1.0 || v == -1.0));
        let gin = block.backward(&Tensor::ones([4, 8])).unwrap();
        assert_eq!(gin.dims(), &[4, 16]);
    }

    #[test]
    fn exit_head_emits_float_scores() {
        let mut rng = rng_from_seed(5);
        let mut head = ExitHead::new(1024, 3, Precision::Binary, &mut rng);
        let x = Tensor::rand_signs([2, 1024], &mut rng);
        let y = head.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        // Scores are sums of ±1 products — generally not ±1 themselves.
        assert!(y.data().iter().any(|&v| v.abs() != 1.0));
        assert_eq!(head.classes(), 3);
    }

    #[test]
    fn float_precision_blocks_work() {
        let mut rng = rng_from_seed(6);
        let mut block = ConvPBlock::new(3, 2, Precision::Float, &mut rng);
        let x = Tensor::randn([1, 3, 8, 8], 1.0, &mut rng);
        let y = block.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 2, 4, 4]);
        // Binary activation still applies (eBNN blocks always binarize
        // activations); only the weights are float.
        assert!(y.data().iter().all(|&v| v == 1.0 || v == -1.0));
        let fb = ConvPBlock::new(3, 2, Precision::Float, &mut rng);
        let bb = ConvPBlock::new(3, 2, Precision::Binary, &mut rng);
        assert!(fb.memory_bytes() > bb.memory_bytes());
    }
}
