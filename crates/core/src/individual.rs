//! The per-device "Individual" baseline (paper §III-F): one ConvP block
//! followed by an exit classifier, trained separately on a single device's
//! views, never consulting the DDNN's local or cloud exits.

use crate::block::{ConvPBlock, ExitHead, Precision};
use crate::train::TrainConfig;
use ddnn_nn::{Adam, Layer, Mode, Optimizer, SoftmaxCrossEntropy};
use ddnn_tensor::rng::rng_from_seed;
use ddnn_tensor::{Result, Tensor, TensorError};
use rand::seq::SliceRandom;

/// A standalone single-device classifier: ConvP block + exit head, the "a
/// single end device portion as shown in Figure 4" model whose accuracy is
/// plotted as the "Individual" curve of Fig. 8.
pub struct IndividualModel {
    conv: ConvPBlock,
    head: ExitHead,
    classes: usize,
}

impl std::fmt::Debug for IndividualModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndividualModel")
            .field("conv", &self.conv.describe())
            .field("classes", &self.classes)
            .finish()
    }
}

impl IndividualModel {
    /// Creates a model with `filters` ConvP filters and `classes` outputs.
    pub fn new(filters: usize, classes: usize, seed: u64) -> Self {
        let mut rng = rng_from_seed(seed);
        let conv = ConvPBlock::new(3, filters, Precision::Binary, &mut rng);
        let head = ExitHead::new(filters * 16 * 16, classes, Precision::Binary, &mut rng);
        IndividualModel { conv, head, classes }
    }

    /// Serialized parameter size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.conv.memory_bytes() + self.head.memory_bytes()
    }

    /// Forward pass producing class logits.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed input.
    pub fn forward(&mut self, views: &Tensor, mode: Mode) -> Result<Tensor> {
        let m = self.conv.forward(views, mode)?;
        self.head.forward(&m, mode)
    }

    /// Trains on one device's `(n, 3, 32, 32)` views.
    ///
    /// # Errors
    ///
    /// Returns an error on mismatched sizes.
    pub fn train(
        &mut self,
        views: &Tensor,
        labels: &[usize],
        cfg: &TrainConfig,
    ) -> Result<Vec<f32>> {
        let n = labels.len();
        if views.dims()[0] != n {
            return Err(TensorError::LengthMismatch { expected: n, actual: views.dims()[0] });
        }
        let mut opt = Adam::with_lr(cfg.lr);
        let loss_fn = SoftmaxCrossEntropy::new();
        let mut rng = rng_from_seed(cfg.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut sum = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let bx = views.select_axis0(chunk)?;
                let by: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                self.conv.zero_grad();
                self.head.zero_grad();
                let logits = self.forward(&bx, Mode::Train)?;
                let out = loss_fn.forward(&logits, &by)?;
                let g = self.head.backward(&out.grad)?;
                let g = g.reshape([chunk.len(), self.conv.filters(), 16, 16])?;
                self.conv.backward(&g)?;
                let mut params = self.conv.params_mut();
                params.extend(self.head.params_mut());
                opt.step(&mut params);
                sum += out.loss;
                batches += 1;
            }
            epoch_losses.push(sum / batches.max(1) as f32);
        }
        if cfg.stat_refresh_passes > 0 {
            // Re-estimate batch-norm statistics with the final weights, as
            // the DDNN trainer does (binarized weights flip discretely, so
            // trajectory-averaged running stats are stale).
            for _ in 0..cfg.stat_refresh_passes {
                let mut start = 0;
                while start < n {
                    let idx: Vec<usize> = (start..(start + cfg.batch_size.max(1)).min(n)).collect();
                    let bx = views.select_axis0(&idx)?;
                    self.forward(&bx, Mode::Train)?;
                    start += cfg.batch_size.max(1);
                }
            }
        }
        Ok(epoch_losses)
    }

    /// Predicts classes for a batch of views.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed input.
    pub fn predict(&mut self, views: &Tensor) -> Result<Vec<usize>> {
        self.forward(views, Mode::Eval)?.softmax_rows()?.argmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn toy(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = rng_from_seed(seed);
        let mut views = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 3;
            let level = [0.1f32, 0.5, 0.9][label];
            views.push(Tensor::rand_uniform([3, 32, 32], level - 0.08, level + 0.08, &mut rng));
            labels.push(label);
        }
        (Tensor::stack(&views).unwrap(), labels)
    }

    #[test]
    fn learns_brightness_toy_problem() {
        let (views, labels) = toy(36, 0);
        let mut m = IndividualModel::new(2, 3, 9);
        let cfg = TrainConfig { epochs: 30, batch_size: 12, ..TrainConfig::default() };
        let losses = m.train(&views, &labels, &cfg).unwrap();
        assert!(losses.last().unwrap() < &losses[0]);
        let acc = accuracy(&m.predict(&views).unwrap(), &labels);
        assert!(acc > 0.7, "train accuracy {acc}");
    }

    #[test]
    fn rejects_size_mismatch() {
        let (views, labels) = toy(10, 1);
        let mut m = IndividualModel::new(2, 3, 0);
        assert!(m.train(&views, &labels[..5], &TrainConfig::quick(1)).is_err());
    }

    #[test]
    fn stays_under_device_memory_budget() {
        let m = IndividualModel::new(4, 3, 0);
        assert!(m.memory_bytes() < 2048, "{} bytes", m.memory_bytes());
    }

    #[test]
    fn predictions_are_valid_classes() {
        let (views, _) = toy(8, 2);
        let mut m = IndividualModel::new(2, 3, 1);
        let preds = m.predict(&views).unwrap();
        assert_eq!(preds.len(), 8);
        assert!(preds.iter().all(|&p| p < 3));
    }
}
