//! # ddnn-core
//!
//! The core of DDNN-RS: a faithful Rust implementation of *Distributed
//! Deep Neural Networks over the Cloud, the Edge and End Devices*
//! (Teerapittayanon, McDanel, Kung — ICDCS 2017).
//!
//! A [`Ddnn`] maps one jointly trained network onto a distributed
//! hierarchy:
//!
//! * each **end device** runs a fused binary ConvP block
//!   ([`ConvPBlock`]) and an exit classifier ([`ExitHead`]) — under 2 KB
//!   of weights;
//! * the **local aggregator** fuses per-device class scores
//!   ([`VectorAggregator`]) and exits confident samples by normalized
//!   entropy ([`normalized_entropy`], [`ExitThreshold`]);
//! * an optional **edge** tier and the **cloud** aggregate the per-device
//!   binary feature maps ([`FeatureAggregator`]), run further ConvP blocks
//!   and make the final decision.
//!
//! Training ([`train`]) follows the paper: the sum of softmax
//! cross-entropy losses at every exit, optimized with Adam (α = 0.001),
//! gradients flowing through the aggregators into the shared device
//! trunks. The communication-cost model of Eq. 1 is [`CommCostModel`];
//! fault injection for §IV-G is in [`fault`].
//!
//! ```no_run
//! use ddnn_core::{Ddnn, DdnnConfig, TrainConfig, train, ExitThreshold};
//! use ddnn_data::{MvmcDataset, all_device_batches, labels};
//!
//! # fn main() -> Result<(), ddnn_tensor::TensorError> {
//! let ds = MvmcDataset::paper();
//! let views = all_device_batches(&ds.train, 6)?;
//! let y = labels(&ds.train);
//! let mut model = Ddnn::new(DdnnConfig::paper());
//! train(&mut model, &views, &y, &TrainConfig::paper())?;
//! let test_views = all_device_batches(&ds.test, 6)?;
//! let out = model.infer(&test_views, ExitThreshold::new(0.8), None)?;
//! println!("{} samples exited locally", out.exit_fraction(ddnn_core::ExitPoint::Local));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod aggregation;
pub mod block;
pub mod checkpoint;
pub mod comm;
pub mod entropy;
pub mod fault;
pub mod individual;
pub mod metrics;
pub mod model;
pub mod train;

pub use aggregation::{AggregationScheme, FeatureAggregator, VectorAggregator};
pub use block::{ConvPBlock, ExitHead, FcBlock, Precision};
pub use checkpoint::CheckpointError;
pub use comm::{CommCostModel, RAW_IMAGE_BYTES};
pub use entropy::{
    normalized_entropy, normalized_entropy_rows, search_threshold, ExitDecision, ExitPolicy,
    ExitThreshold,
};
pub use fault::{fail_devices, fail_devices_with, progressive_failures, single_failures};
pub use individual::IndividualModel;
pub use metrics::{
    accuracy, evaluate_exit_accuracies, evaluate_overall, ExitAccuracies, OverallEvaluation,
};
pub use model::{
    CloudPart, Ddnn, DdnnConfig, DdnnPartition, DevicePart, EdgeConfig, EdgePart, ExitGrads,
    ExitLogits, ExitPoint, GatewayPart, InferenceOutput, BLANK_INPUT_VALUE, DEVICE_MAP_SIZE,
    INPUT_CHANNELS, INPUT_SIZE,
};
pub use train::{train, EpochStats, TrainConfig, TrainReport};
