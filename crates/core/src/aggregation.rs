//! Aggregation of multi-device outputs (paper §III-B): max pooling (MP),
//! average pooling (AP) and concatenation (CC), as differentiable layers.
//!
//! Aggregators appear twice in a DDNN: the *local aggregator* combines the
//! per-device class-score vectors before the local exit, and the
//! *cloud/edge aggregator* combines the per-device binary feature maps
//! before further NN processing. Making them differentiable layers is what
//! produces the gradient-flow effects the paper analyses in §IV-C — e.g.
//! MP only passes gradients through the argmax device, which is why MP-MP
//! trains worse than MP-CC.

use ddnn_nn::{Layer, Linear, Mode, Param};
use ddnn_tensor::{Result, Tensor, TensorError};
use rand::Rng;
use std::fmt;

/// The three aggregation schemes of paper §III-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregationScheme {
    /// Max pooling: per-component maximum over devices.
    MaxPool,
    /// Average pooling: per-component mean over devices.
    AvgPool,
    /// Concatenation: keeps all information; dimensionality grows with the
    /// number of devices.
    Concat,
}

impl AggregationScheme {
    /// All schemes, in the order the paper's Table I enumerates them.
    pub const ALL: [AggregationScheme; 3] =
        [AggregationScheme::MaxPool, AggregationScheme::AvgPool, AggregationScheme::Concat];

    /// The paper's two-letter abbreviation (MP / AP / CC).
    pub fn abbrev(&self) -> &'static str {
        match self {
            AggregationScheme::MaxPool => "MP",
            AggregationScheme::AvgPool => "AP",
            AggregationScheme::Concat => "CC",
        }
    }
}

impl fmt::Display for AggregationScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

fn check_inputs(inputs: &[Tensor], expected: usize, op: &'static str) -> Result<()> {
    if inputs.len() != expected {
        return Err(TensorError::LengthMismatch { expected, actual: inputs.len() });
    }
    let first = &inputs[0];
    for t in inputs {
        if t.shape() != first.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: first.dims().to_vec(),
                rhs: t.dims().to_vec(),
                op,
            });
        }
    }
    Ok(())
}

/// Elementwise max over same-shaped tensors; returns the result plus the
/// index of the winning tensor per element.
fn elementwise_max(inputs: &[Tensor]) -> (Tensor, Vec<u16>) {
    let len = inputs[0].len();
    let mut out = inputs[0].data().to_vec();
    let mut winner = vec![0u16; len];
    for (d, t) in inputs.iter().enumerate().skip(1) {
        for (i, &v) in t.data().iter().enumerate() {
            if v > out[i] {
                out[i] = v;
                winner[i] = d as u16;
            }
        }
    }
    (Tensor::from_vec(out, inputs[0].dims().to_vec()).expect("same shape"), winner)
}

/// Aggregates per-device *class-score vectors* `(n, classes)` into one
/// `(n, classes)` matrix for the local exit.
///
/// For [`AggregationScheme::Concat`] the concatenated
/// `(n, devices·classes)` matrix is mapped back to `(n, classes)` by an
/// additional linear layer, exactly as §III-B specifies.
#[derive(Debug, Clone)]
pub struct VectorAggregator {
    scheme: AggregationScheme,
    num_inputs: usize,
    dim: usize,
    projection: Option<Linear>,
    cached_winner: Option<Vec<u16>>,
    cached_dims: Vec<usize>,
}

impl VectorAggregator {
    /// Creates an aggregator over `num_inputs` vectors of width `dim`.
    pub fn new(
        scheme: AggregationScheme,
        num_inputs: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let projection = (scheme == AggregationScheme::Concat)
            .then(|| Linear::new(num_inputs * dim, dim, true, rng));
        VectorAggregator {
            scheme,
            num_inputs,
            dim,
            projection,
            cached_winner: None,
            cached_dims: Vec::new(),
        }
    }

    /// The aggregation scheme.
    pub fn scheme(&self) -> AggregationScheme {
        self.scheme
    }

    /// Aggregates one `(n, dim)` tensor per device into `(n, dim)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the input count or shapes are inconsistent.
    pub fn forward(&mut self, inputs: &[Tensor], mode: Mode) -> Result<Tensor> {
        check_inputs(inputs, self.num_inputs, "vector_aggregator.forward")?;
        self.cached_dims = inputs[0].dims().to_vec();
        match self.scheme {
            AggregationScheme::MaxPool => {
                let (out, winner) = elementwise_max(inputs);
                self.cached_winner = Some(winner);
                Ok(out)
            }
            AggregationScheme::AvgPool => {
                let mut out = Tensor::zeros(inputs[0].dims().to_vec());
                for t in inputs {
                    out.add_assign(t)?;
                }
                out.scale_in_place(1.0 / self.num_inputs as f32);
                Ok(out)
            }
            AggregationScheme::Concat => {
                let cat = Tensor::concat(inputs, 1)?;
                self.projection
                    .as_mut()
                    .expect("Concat aggregator always has a projection")
                    .forward(&cat, mode)
            }
        }
    }

    /// Backpropagates through the aggregation, returning one gradient per
    /// device input.
    ///
    /// # Errors
    ///
    /// Returns an error if called before `forward` or with a mismatched
    /// gradient shape.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Vec<Tensor>> {
        match self.scheme {
            AggregationScheme::MaxPool => {
                let winner = self.cached_winner.as_ref().ok_or(TensorError::Empty {
                    op: "vector_aggregator.backward before forward",
                })?;
                if grad_output.len() != winner.len() {
                    return Err(TensorError::LengthMismatch {
                        expected: winner.len(),
                        actual: grad_output.len(),
                    });
                }
                let mut grads = vec![Tensor::zeros(self.cached_dims.clone()); self.num_inputs];
                for (i, (&g, &w)) in grad_output.data().iter().zip(winner).enumerate() {
                    grads[w as usize].data_mut()[i] = g;
                }
                Ok(grads)
            }
            AggregationScheme::AvgPool => {
                let g = grad_output.scale(1.0 / self.num_inputs as f32);
                Ok(vec![g; self.num_inputs])
            }
            AggregationScheme::Concat => {
                let gcat = self
                    .projection
                    .as_mut()
                    .expect("Concat aggregator always has a projection")
                    .backward(grad_output)?;
                gcat.split(self.num_inputs, 1)
            }
        }
    }

    /// Trainable parameters (non-empty only for the CC projection).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.projection.as_mut().map(|p| p.params_mut()).unwrap_or_default()
    }

    /// Width of the aggregated output.
    pub fn output_dim(&self) -> usize {
        self.dim
    }
}

/// Aggregates per-device *binary feature maps* `(n, f, h, w)` for the
/// cloud/edge aggregator.
///
/// MP/AP pool elementwise across devices (output has `f` channels); CC
/// concatenates along the channel axis (output has `devices·f` channels,
/// which the first cloud ConvP block consumes directly — the convolution
/// plays the role of the dimension-restoring linear map).
#[derive(Debug, Clone)]
pub struct FeatureAggregator {
    scheme: AggregationScheme,
    num_inputs: usize,
    cached_winner: Option<Vec<u16>>,
    cached_dims: Vec<usize>,
}

impl FeatureAggregator {
    /// Creates a feature aggregator over `num_inputs` maps.
    pub fn new(scheme: AggregationScheme, num_inputs: usize) -> Self {
        FeatureAggregator { scheme, num_inputs, cached_winner: None, cached_dims: Vec::new() }
    }

    /// The aggregation scheme.
    pub fn scheme(&self) -> AggregationScheme {
        self.scheme
    }

    /// Channel count of the aggregated output given per-device channels.
    pub fn output_channels(&self, per_device_channels: usize) -> usize {
        match self.scheme {
            AggregationScheme::Concat => self.num_inputs * per_device_channels,
            _ => per_device_channels,
        }
    }

    /// Aggregates one `(n, f, h, w)` map per device.
    ///
    /// # Errors
    ///
    /// Returns an error if the input count or shapes are inconsistent.
    pub fn forward(&mut self, inputs: &[Tensor]) -> Result<Tensor> {
        check_inputs(inputs, self.num_inputs, "feature_aggregator.forward")?;
        self.cached_dims = inputs[0].dims().to_vec();
        match self.scheme {
            AggregationScheme::MaxPool => {
                let (out, winner) = elementwise_max(inputs);
                self.cached_winner = Some(winner);
                Ok(out)
            }
            AggregationScheme::AvgPool => {
                let mut out = Tensor::zeros(inputs[0].dims().to_vec());
                for t in inputs {
                    out.add_assign(t)?;
                }
                out.scale_in_place(1.0 / self.num_inputs as f32);
                Ok(out)
            }
            AggregationScheme::Concat => Tensor::concat(inputs, 1),
        }
    }

    /// Backpropagates, returning one gradient per device input.
    ///
    /// # Errors
    ///
    /// Returns an error if called before `forward` or with an inconsistent
    /// gradient shape.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Vec<Tensor>> {
        match self.scheme {
            AggregationScheme::MaxPool => {
                let winner = self.cached_winner.as_ref().ok_or(TensorError::Empty {
                    op: "feature_aggregator.backward before forward",
                })?;
                if grad_output.len() != winner.len() {
                    return Err(TensorError::LengthMismatch {
                        expected: winner.len(),
                        actual: grad_output.len(),
                    });
                }
                let mut grads = vec![Tensor::zeros(self.cached_dims.clone()); self.num_inputs];
                for (i, (&g, &w)) in grad_output.data().iter().zip(winner).enumerate() {
                    grads[w as usize].data_mut()[i] = g;
                }
                Ok(grads)
            }
            AggregationScheme::AvgPool => {
                Ok(vec![grad_output.scale(1.0 / self.num_inputs as f32); self.num_inputs])
            }
            AggregationScheme::Concat => grad_output.split(self.num_inputs, 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddnn_tensor::rng::rng_from_seed;

    fn inputs2() -> Vec<Tensor> {
        vec![
            Tensor::from_vec(vec![1.0, -2.0, 0.5], [1, 3]).unwrap(),
            Tensor::from_vec(vec![0.0, 3.0, 0.5], [1, 3]).unwrap(),
        ]
    }

    #[test]
    fn abbrevs_match_paper() {
        assert_eq!(AggregationScheme::MaxPool.to_string(), "MP");
        assert_eq!(AggregationScheme::AvgPool.to_string(), "AP");
        assert_eq!(AggregationScheme::Concat.to_string(), "CC");
    }

    #[test]
    fn mp_takes_componentwise_max() {
        let mut rng = rng_from_seed(0);
        let mut agg = VectorAggregator::new(AggregationScheme::MaxPool, 2, 3, &mut rng);
        let out = agg.forward(&inputs2(), Mode::Train).unwrap();
        assert_eq!(out.data(), &[1.0, 3.0, 0.5]);
    }

    #[test]
    fn mp_is_idempotent_on_identical_inputs() {
        let mut rng = rng_from_seed(1);
        let mut agg = VectorAggregator::new(AggregationScheme::MaxPool, 3, 4, &mut rng);
        let t = Tensor::from_fn([2, 4], |i| (i as f32).sin());
        let out = agg.forward(&[t.clone(), t.clone(), t.clone()], Mode::Train).unwrap();
        assert_eq!(out, t);
    }

    #[test]
    fn ap_takes_componentwise_mean() {
        let mut rng = rng_from_seed(2);
        let mut agg = VectorAggregator::new(AggregationScheme::AvgPool, 2, 3, &mut rng);
        let out = agg.forward(&inputs2(), Mode::Train).unwrap();
        assert_eq!(out.data(), &[0.5, 0.5, 0.5]);
    }

    #[test]
    fn ap_is_linear() {
        // AP(a) + AP(b) == AP(a + b), per input slot.
        let mut rng = rng_from_seed(3);
        let mut agg = VectorAggregator::new(AggregationScheme::AvgPool, 2, 3, &mut rng);
        let a = inputs2();
        let b: Vec<Tensor> = a.iter().map(|t| t.scale(2.0)).collect();
        let sum: Vec<Tensor> = a.iter().zip(&b).map(|(x, y)| x.add(y).unwrap()).collect();
        let lhs = agg
            .forward(&a, Mode::Train)
            .unwrap()
            .add(&agg.forward(&b, Mode::Train).unwrap())
            .unwrap();
        let rhs = agg.forward(&sum, Mode::Train).unwrap();
        assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-6);
    }

    #[test]
    fn cc_projects_back_to_class_width() {
        let mut rng = rng_from_seed(4);
        let mut agg = VectorAggregator::new(AggregationScheme::Concat, 2, 3, &mut rng);
        let out = agg.forward(&inputs2(), Mode::Train).unwrap();
        assert_eq!(out.dims(), &[1, 3]);
        assert!(!agg.params_mut().is_empty(), "CC carries a projection layer");
    }

    #[test]
    fn mp_routes_grads_to_argmax() {
        // The §IV-C explanation of MP-MP's poor training: only the argmax
        // device receives a gradient.
        let mut rng = rng_from_seed(5);
        let mut agg = VectorAggregator::new(AggregationScheme::MaxPool, 2, 3, &mut rng);
        agg.forward(&inputs2(), Mode::Train).unwrap();
        let grads = agg.backward(&Tensor::ones([1, 3])).unwrap();
        // winners: [dev0, dev1, dev0 (tie -> first)]
        assert_eq!(grads[0].data(), &[1.0, 0.0, 1.0]);
        assert_eq!(grads[1].data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn ap_splits_grads_evenly() {
        let mut rng = rng_from_seed(6);
        let mut agg = VectorAggregator::new(AggregationScheme::AvgPool, 2, 3, &mut rng);
        agg.forward(&inputs2(), Mode::Train).unwrap();
        let grads = agg.backward(&Tensor::ones([1, 3])).unwrap();
        assert_eq!(grads[0].data(), &[0.5, 0.5, 0.5]);
        assert_eq!(grads[0], grads[1]);
    }

    #[test]
    fn cc_passes_grads_to_all_devices() {
        let mut rng = rng_from_seed(7);
        let mut agg = VectorAggregator::new(AggregationScheme::Concat, 2, 3, &mut rng);
        agg.forward(&inputs2(), Mode::Train).unwrap();
        let grads = agg.backward(&Tensor::ones([1, 3])).unwrap();
        assert_eq!(grads.len(), 2);
        // Generic projection weights give every device a nonzero gradient.
        assert!(grads[0].norm_sq() > 0.0);
        assert!(grads[1].norm_sq() > 0.0);
    }

    #[test]
    fn aggregator_rejects_wrong_input_count_or_shapes() {
        let mut rng = rng_from_seed(8);
        let mut agg = VectorAggregator::new(AggregationScheme::MaxPool, 3, 3, &mut rng);
        assert!(agg.forward(&inputs2(), Mode::Train).is_err());
        let bad = vec![Tensor::zeros([1, 3]), Tensor::zeros([1, 4]), Tensor::zeros([1, 3])];
        assert!(agg.forward(&bad, Mode::Train).is_err());
    }

    #[test]
    fn feature_cc_concatenates_channels() {
        let mut agg = FeatureAggregator::new(AggregationScheme::Concat, 2);
        let a = Tensor::ones([1, 4, 2, 2]);
        let b = Tensor::zeros([1, 4, 2, 2]);
        let out = agg.forward(&[a, b]).unwrap();
        assert_eq!(out.dims(), &[1, 8, 2, 2]);
        assert_eq!(agg.output_channels(4), 8);
        let grads = agg.backward(&Tensor::ones([1, 8, 2, 2])).unwrap();
        assert_eq!(grads[0].dims(), &[1, 4, 2, 2]);
    }

    #[test]
    fn feature_mp_pools_across_devices() {
        let mut agg = FeatureAggregator::new(AggregationScheme::MaxPool, 2);
        let a = Tensor::full([1, 1, 2, 2], -1.0);
        let b = Tensor::ones([1, 1, 2, 2]);
        let out = agg.forward(&[a, b]).unwrap();
        assert_eq!(out.data(), &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(agg.output_channels(1), 1);
        let grads = agg.backward(&Tensor::ones([1, 1, 2, 2])).unwrap();
        assert_eq!(grads[0].sum(), 0.0);
        assert_eq!(grads[1].sum(), 4.0);
    }

    #[test]
    fn feature_ap_grad_conservation() {
        // The total gradient mass is preserved: Σ_d ‖g_d‖₁ == ‖g‖₁ for AP.
        let mut agg = FeatureAggregator::new(AggregationScheme::AvgPool, 4);
        let ins: Vec<Tensor> = (0..4).map(|i| Tensor::full([1, 2, 2, 2], i as f32)).collect();
        agg.forward(&ins).unwrap();
        let g = Tensor::ones([1, 2, 2, 2]);
        let grads = agg.backward(&g).unwrap();
        let total: f32 = grads.iter().map(|t| t.sum()).sum();
        assert!((total - g.sum()).abs() < 1e-6);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut agg = FeatureAggregator::new(AggregationScheme::MaxPool, 2);
        assert!(agg.backward(&Tensor::ones([1, 1, 2, 2])).is_err());
    }
}
