//! Exit confidence: normalized entropy and threshold policies (paper §III-D).

use ddnn_tensor::{Result, Tensor, TensorError};

/// Normalized entropy of a probability vector:
///
/// `η(x) = − Σᵢ xᵢ·log(xᵢ) / log(|C|)` ∈ `[0, 1]`.
///
/// `η ≈ 0` means the predictor is confident, `η ≈ 1` means maximally
/// uncertain. The paper uses this (rather than raw entropy as in
/// BranchyNet) because the `[0, 1]` range makes thresholds interpretable
/// and searchable.
///
/// # Errors
///
/// Returns an error if `probs` is not rank 1, has fewer than 2 entries, or
/// contains a non-finite value ([`TensorError::NonFinite`]). The last
/// case matters operationally: NaN probabilities (e.g. softmax of logits
/// from a corrupt-but-undetected legacy frame) would otherwise skip the
/// accumulation loop entirely (`NaN > 0` is false) and report perfect
/// confidence — and `f32::clamp` propagates NaN anyway, making the
/// `η ≤ T` comparison silently false. Either failure mode misroutes the
/// sample without a trace; a typed error lets the caller decide.
pub fn normalized_entropy(probs: &Tensor) -> Result<f32> {
    if probs.rank() != 1 {
        return Err(TensorError::RankMismatch { expected: 1, actual: probs.rank() });
    }
    let c = probs.len();
    if c < 2 {
        return Err(TensorError::Empty { op: "normalized_entropy needs >=2 classes" });
    }
    if probs.data().iter().any(|p| !p.is_finite()) {
        return Err(TensorError::NonFinite { op: "normalized_entropy" });
    }
    let mut h = 0.0f32;
    for &p in probs.data() {
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    Ok((h / (c as f32).ln()).clamp(0.0, 1.0))
}

/// Normalized entropy of each row of an `(n, classes)` probability matrix.
///
/// # Errors
///
/// Returns an error if `probs` is not rank 2 with at least 2 columns.
pub fn normalized_entropy_rows(probs: &Tensor) -> Result<Vec<f32>> {
    if probs.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: probs.rank() });
    }
    (0..probs.dims()[0]).map(|i| normalized_entropy(&probs.row(i)?)).collect()
}

/// An exit decision policy: exit when `η(x) ≤ T` (paper: "if the predictor
/// is not confident, i.e. η > T, the system falls back to a higher exit").
///
/// `T = 0` exits nothing; `T = 1` exits everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExitThreshold(f32);

impl ExitThreshold {
    /// Creates a threshold, clamping into `[0, 1]`.
    pub fn new(t: f32) -> Self {
        ExitThreshold(t.clamp(0.0, 1.0))
    }

    /// The threshold value.
    pub fn value(&self) -> f32 {
        self.0
    }

    /// Whether a sample with normalized entropy `eta` exits at this point.
    pub fn should_exit(&self, eta: f32) -> bool {
        eta <= self.0
    }
}

impl Default for ExitThreshold {
    /// The paper's operating point `T = 0.8` (§IV-D).
    fn default() -> Self {
        ExitThreshold(0.8)
    }
}

impl std::fmt::Display for ExitThreshold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T={}", self.0)
    }
}

/// The exit decision of one tier of a DDNN hierarchy (paper §III-D):
/// intermediate exits classify a sample when the normalized entropy of
/// their softmaxed logits is within a threshold, while the terminal exit
/// (the paper's cloud) always classifies whatever reaches it.
///
/// This is the *single* owner of the staged-exit decision: both
/// [`crate::Ddnn::infer`] and the distributed runtime's tier nodes consume
/// it, so the in-process and simulated paths cannot drift apart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExitPolicy {
    /// Entropy-gated exit: classify iff `η(softmax(logits)) ≤ T`.
    Entropy(ExitThreshold),
    /// The terminal exit: always classifies.
    Terminal,
}

/// The full outcome of evaluating one sample at one exit: the measured
/// confidence, the exit's prediction, and whether the sample stops here.
/// Carrying η and the prediction even when the sample escalates (or when
/// the exit is terminal) is what per-exit telemetry consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExitDecision {
    /// Normalized entropy of the exit's softmaxed logits.
    pub eta: f32,
    /// Argmax class of the exit (what *would* be predicted here).
    pub prediction: usize,
    /// Whether the sample exits at this point (`η ≤ T`, or terminal).
    pub exits: bool,
}

impl ExitPolicy {
    /// Whether this is the always-classify terminal exit.
    pub fn is_terminal(&self) -> bool {
        matches!(self, ExitPolicy::Terminal)
    }

    /// Whether a sample with normalized entropy `eta` exits here.
    pub fn should_exit(&self, eta: f32) -> bool {
        match self {
            ExitPolicy::Entropy(t) => t.should_exit(eta),
            ExitPolicy::Terminal => true,
        }
    }

    /// Evaluates one sample from its `(1, classes)` exit logits, returning
    /// the full [`ExitDecision`] (η, prediction, and whether it exits). η
    /// is computed for the terminal exit too — it is free relative to the
    /// softmax and is exactly the per-exit confidence telemetry wants.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed logits, including
    /// [`TensorError::NonFinite`] when the logits produce non-finite
    /// probabilities — an uncertain-looking sample must escalate by
    /// *measurement*, not because a NaN comparison silently failed.
    pub fn evaluate(&self, logits: &Tensor) -> Result<ExitDecision> {
        let probs = logits.softmax_rows()?;
        let eta = normalized_entropy(&probs.row(0)?)?;
        let prediction = probs.argmax_rows()?[0];
        Ok(ExitDecision { eta, prediction, exits: self.should_exit(eta) })
    }

    /// Decides one sample from its `(1, classes)` exit logits: the
    /// predicted class if the sample exits here, `None` if it escalates to
    /// the next tier.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed or non-finite logits (see
    /// [`ExitPolicy::evaluate`]).
    pub fn decide(&self, logits: &Tensor) -> Result<Option<usize>> {
        let d = self.evaluate(logits)?;
        Ok(d.exits.then_some(d.prediction))
    }

    /// Row-wise [`ExitPolicy::decide`] over `(n, classes)` logits.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed or non-finite logits (see
    /// [`ExitPolicy::evaluate`]).
    pub fn decide_rows(&self, logits: &Tensor) -> Result<Vec<Option<usize>>> {
        let probs = logits.softmax_rows()?;
        let preds = probs.argmax_rows()?;
        let etas = normalized_entropy_rows(&probs)?;
        Ok(preds.into_iter().zip(etas).map(|(p, eta)| self.should_exit(eta).then_some(p)).collect())
    }
}

/// Searches a threshold grid for the best overall accuracy, the procedure
/// the paper describes for picking `T` on a validation set (§III-D).
///
/// `local_entropy[i]`/`local_correct[i]`/`fallback_correct[i]` describe each
/// validation sample: its local-exit confidence, and whether the local and
/// fallback (cloud) classifiers get it right. Returns `(threshold,
/// accuracy)` of the best grid point, preferring higher local-exit rates on
/// accuracy ties (cheaper communication at equal accuracy).
pub fn search_threshold(
    local_entropy: &[f32],
    local_correct: &[bool],
    fallback_correct: &[bool],
    grid: &[f32],
) -> (ExitThreshold, f32) {
    assert_eq!(local_entropy.len(), local_correct.len());
    assert_eq!(local_entropy.len(), fallback_correct.len());
    let n = local_entropy.len().max(1) as f32;
    let mut best = (ExitThreshold::new(0.0), -1.0f32);
    for &t in grid {
        let th = ExitThreshold::new(t);
        let correct = local_entropy
            .iter()
            .zip(local_correct.iter().zip(fallback_correct))
            .filter(|(&eta, (&lc, &fc))| if th.should_exit(eta) { lc } else { fc })
            .count() as f32;
        let acc = correct / n;
        if acc > best.1 {
            best = (th, acc);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution_has_entropy_one() {
        let p = Tensor::full([4], 0.25);
        assert!((normalized_entropy(&p).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn one_hot_has_entropy_zero() {
        let p = Tensor::from_vec(vec![1.0, 0.0, 0.0], [3]).unwrap();
        assert_eq!(normalized_entropy(&p).unwrap(), 0.0);
    }

    #[test]
    fn entropy_is_monotone_in_uncertainty() {
        let confident = Tensor::from_vec(vec![0.9, 0.05, 0.05], [3]).unwrap();
        let unsure = Tensor::from_vec(vec![0.5, 0.3, 0.2], [3]).unwrap();
        assert!(normalized_entropy(&confident).unwrap() < normalized_entropy(&unsure).unwrap());
    }

    #[test]
    fn entropy_in_unit_interval_for_any_simplex_point() {
        for seed in 0..20u64 {
            let mut rng = ddnn_tensor::rng::rng_from_seed(seed);
            let raw = Tensor::rand_uniform([3], 0.01, 1.0, &mut rng);
            let total = raw.sum();
            let p = raw.scale(1.0 / total);
            let eta = normalized_entropy(&p).unwrap();
            assert!((0.0..=1.0).contains(&eta));
        }
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(normalized_entropy(&Tensor::zeros([2, 2])).is_err());
        assert!(normalized_entropy(&Tensor::ones([1])).is_err());
    }

    #[test]
    fn non_finite_probabilities_are_a_typed_error() {
        // Regression: NaN used to skip the accumulation loop and report
        // η = 0 (perfect confidence); ±inf drove η through f32::clamp,
        // which propagates NaN. Both must surface as NonFinite.
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let p = Tensor::from_vec(vec![0.5, bad, 0.25], [3]).unwrap();
            assert_eq!(
                normalized_entropy(&p).unwrap_err(),
                TensorError::NonFinite { op: "normalized_entropy" },
                "value {bad}"
            );
            let rows = Tensor::from_vec(vec![0.5, 0.5, 0.5, bad], [2, 2]).unwrap();
            assert!(normalized_entropy_rows(&rows).is_err(), "value {bad}");
        }
    }

    #[test]
    fn policies_surface_non_finite_logits_instead_of_escalating_forever() {
        // A NaN logit survives softmax as NaN in every slot; before the
        // guard, an entropy gate would silently escalate the sample on
        // every tier and the terminal would classify garbage.
        let bad = Tensor::from_vec(vec![f32::NAN, 1.0, 0.0], [1, 3]).unwrap();
        for policy in [ExitPolicy::Entropy(ExitThreshold::default()), ExitPolicy::Terminal] {
            assert!(policy.evaluate(&bad).is_err(), "{policy:?}");
            assert!(policy.decide(&bad).is_err(), "{policy:?}");
            assert!(policy.decide_rows(&bad).is_err(), "{policy:?}");
        }
    }

    #[test]
    fn evaluate_exposes_eta_prediction_and_the_gate() {
        let peaked = Tensor::from_vec(vec![50.0, 0.0, 0.0], [1, 3]).unwrap();
        let uniform = Tensor::from_vec(vec![0.5, 0.5, 0.5], [1, 3]).unwrap();
        let gate = ExitPolicy::Entropy(ExitThreshold::new(0.5));
        let d = gate.evaluate(&peaked).unwrap();
        assert!(d.exits && d.prediction == 0 && d.eta < 0.5);
        let d = gate.evaluate(&uniform).unwrap();
        assert!(!d.exits && d.eta > 0.99);
        // Terminal always exits but still measures η.
        let d = ExitPolicy::Terminal.evaluate(&uniform).unwrap();
        assert!(d.exits && d.eta > 0.99);
    }

    #[test]
    fn rows_variant_matches_scalar() {
        let m = Tensor::from_vec(vec![1.0, 0.0, 0.5, 0.5], [2, 2]).unwrap();
        let rows = normalized_entropy_rows(&m).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], 0.0);
        assert!((rows[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn threshold_semantics() {
        let t = ExitThreshold::new(0.8);
        assert!(t.should_exit(0.8));
        assert!(t.should_exit(0.1));
        assert!(!t.should_exit(0.81));
        assert_eq!(ExitThreshold::new(0.0).value(), 0.0);
        assert_eq!(ExitThreshold::new(2.0).value(), 1.0);
        assert_eq!(ExitThreshold::default().value(), 0.8);
    }

    #[test]
    fn threshold_zero_exits_nothing_threshold_one_exits_all() {
        // η is strictly positive for non-degenerate predictions, so T=0
        // keeps everything in the cloud; T=1 exits every sample locally.
        let t0 = ExitThreshold::new(0.0);
        let t1 = ExitThreshold::new(1.0);
        for eta in [0.001f32, 0.4, 0.999] {
            assert!(!t0.should_exit(eta) || eta == 0.0);
            assert!(t1.should_exit(eta));
        }
    }

    #[test]
    fn terminal_policy_always_classifies() {
        let logits = Tensor::from_vec(vec![0.1, 0.1, 0.1], [1, 3]).unwrap();
        assert!(ExitPolicy::Terminal.is_terminal());
        assert!(ExitPolicy::Terminal.should_exit(1.0));
        assert!(ExitPolicy::Terminal.decide(&logits).unwrap().is_some());
    }

    #[test]
    fn entropy_policy_escalates_uncertain_samples() {
        // Uniform logits -> η = 1: a tight threshold escalates, a loose
        // one classifies; a peaked row always classifies.
        let uniform = Tensor::from_vec(vec![0.5, 0.5, 0.5], [1, 3]).unwrap();
        let peaked = Tensor::from_vec(vec![50.0, 0.0, 0.0], [1, 3]).unwrap();
        let tight = ExitPolicy::Entropy(ExitThreshold::new(0.1));
        assert!(!tight.is_terminal());
        assert_eq!(tight.decide(&uniform).unwrap(), None);
        assert_eq!(tight.decide(&peaked).unwrap(), Some(0));
        let loose = ExitPolicy::Entropy(ExitThreshold::new(1.0));
        assert!(loose.decide(&uniform).unwrap().is_some());
    }

    #[test]
    fn decide_rows_matches_per_row_decide() {
        let logits =
            Tensor::from_vec(vec![50.0, 0.0, 0.0, 0.2, 0.2, 0.2, 0.0, 9.0, 0.0], [3, 3]).unwrap();
        for policy in [ExitPolicy::Entropy(ExitThreshold::new(0.5)), ExitPolicy::Terminal] {
            let rows = policy.decide_rows(&logits).unwrap();
            assert_eq!(rows.len(), 3);
            for (i, row) in rows.iter().enumerate() {
                let one = logits.row(i).unwrap().reshape([1, 3]).unwrap();
                assert_eq!(*row, policy.decide(&one).unwrap(), "row {i}");
            }
        }
    }

    #[test]
    fn search_picks_accuracy_maximising_threshold() {
        // Sample 0: confident local & correct; sample 1: unsure, local
        // wrong but cloud right; sample 2: medium, both right.
        let eta = [0.1, 0.9, 0.5];
        let local = [true, false, true];
        let cloud = [true, true, true];
        let grid = [0.0, 0.25, 0.5, 0.75, 1.0];
        let (t, acc) = search_threshold(&eta, &local, &cloud, &grid);
        assert_eq!(acc, 1.0);
        assert!(t.value() < 0.9, "must not exit the bad sample locally");
    }
}
