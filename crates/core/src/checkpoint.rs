//! Checkpointing: serialize a trained [`Ddnn`] (architecture, parameters
//! and batch-norm running statistics) to a compact binary format.
//!
//! A real DDNN deployment trains in the cloud (paper §III-C: "the DDNN
//! system can be trained on a single powerful server") and then ships each
//! device its tiny section; the checkpoint is the artifact that crosses
//! that boundary. Loading a checkpoint reproduces the model bit-for-bit:
//! inference on a restored model equals inference on the original.

use crate::aggregation::AggregationScheme;
use crate::block::Precision;
use crate::model::{Ddnn, DdnnConfig, EdgeConfig};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;
use std::path::Path;

/// Magic bytes identifying a DDNN checkpoint.
pub const MAGIC: &[u8; 4] = b"DDNN";
/// Checkpoint format version.
pub const VERSION: u16 = 1;

/// Error produced by checkpoint encoding/decoding.
#[derive(Debug)]
pub enum CheckpointError {
    /// The buffer is not a DDNN checkpoint.
    BadMagic,
    /// The checkpoint was written by an incompatible format version.
    BadVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The buffer ended prematurely or contains inconsistent sizes.
    Malformed {
        /// What is wrong.
        reason: String,
    },
    /// An I/O error while reading or writing a checkpoint file.
    Io(std::io::Error),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a DDNN checkpoint (bad magic)"),
            CheckpointError::BadVersion { found } => {
                write!(f, "unsupported checkpoint version {found} (expected {VERSION})")
            }
            CheckpointError::Malformed { reason } => write!(f, "malformed checkpoint: {reason}"),
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn encode_agg(a: AggregationScheme) -> u8 {
    match a {
        AggregationScheme::MaxPool => 0,
        AggregationScheme::AvgPool => 1,
        AggregationScheme::Concat => 2,
    }
}

fn decode_agg(v: u8) -> Result<AggregationScheme, CheckpointError> {
    match v {
        0 => Ok(AggregationScheme::MaxPool),
        1 => Ok(AggregationScheme::AvgPool),
        2 => Ok(AggregationScheme::Concat),
        other => Err(CheckpointError::Malformed { reason: format!("aggregation tag {other}") }),
    }
}

fn encode_config(cfg: &DdnnConfig, buf: &mut BytesMut) {
    buf.put_u32_le(cfg.num_devices as u32);
    buf.put_u32_le(cfg.num_classes as u32);
    buf.put_u32_le(cfg.device_filters as u32);
    buf.put_u8(encode_agg(cfg.local_agg));
    buf.put_u8(encode_agg(cfg.cloud_agg));
    match cfg.edge {
        Some(e) => {
            buf.put_u8(1);
            buf.put_u32_le(e.filters as u32);
            buf.put_u8(encode_agg(e.agg));
        }
        None => {
            buf.put_u8(0);
            buf.put_u32_le(0);
            buf.put_u8(0);
        }
    }
    buf.put_u32_le(cfg.cloud_filters[0] as u32);
    buf.put_u32_le(cfg.cloud_filters[1] as u32);
    buf.put_u8(match cfg.cloud_precision {
        Precision::Binary => 0,
        Precision::Float => 1,
    });
    buf.put_u64_le(cfg.seed);
}

fn need(buf: &Bytes, n: usize) -> Result<(), CheckpointError> {
    if buf.remaining() < n {
        Err(CheckpointError::Malformed { reason: format!("truncated: need {n} more bytes") })
    } else {
        Ok(())
    }
}

fn decode_config(buf: &mut Bytes) -> Result<DdnnConfig, CheckpointError> {
    need(buf, 4 * 3 + 2 + 1 + 4 + 1 + 4 * 2 + 1 + 8)?;
    let num_devices = buf.get_u32_le() as usize;
    let num_classes = buf.get_u32_le() as usize;
    let device_filters = buf.get_u32_le() as usize;
    let local_agg = decode_agg(buf.get_u8())?;
    let cloud_agg = decode_agg(buf.get_u8())?;
    let has_edge = buf.get_u8() == 1;
    let edge_filters = buf.get_u32_le() as usize;
    let edge_agg_tag = buf.get_u8();
    let edge = if has_edge {
        Some(EdgeConfig { filters: edge_filters, agg: decode_agg(edge_agg_tag)? })
    } else {
        None
    };
    let cloud_filters = [buf.get_u32_le() as usize, buf.get_u32_le() as usize];
    let cloud_precision = match buf.get_u8() {
        0 => Precision::Binary,
        1 => Precision::Float,
        other => {
            return Err(CheckpointError::Malformed { reason: format!("precision tag {other}") })
        }
    };
    let seed = buf.get_u64_le();
    Ok(DdnnConfig {
        num_devices,
        num_classes,
        device_filters,
        local_agg,
        cloud_agg,
        edge,
        cloud_filters,
        cloud_precision,
        seed,
    })
}

fn put_f32s(buf: &mut BytesMut, xs: &[f32]) {
    buf.put_u32_le(xs.len() as u32);
    for &x in xs {
        buf.put_f32_le(x);
    }
}

fn get_f32s(buf: &mut Bytes) -> Result<Vec<f32>, CheckpointError> {
    need(buf, 4)?;
    let n = buf.get_u32_le() as usize;
    need(buf, 4 * n)?;
    Ok((0..n).map(|_| buf.get_f32_le()).collect())
}

impl Ddnn {
    /// Serializes the model (config + parameters + batch-norm statistics)
    /// to bytes.
    pub fn save_bytes(&mut self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        encode_config(self.config(), &mut buf);
        let params = self.params_mut();
        buf.put_u32_le(params.len() as u32);
        for p in params {
            put_f32s(&mut buf, p.value.data());
        }
        let blocks = self.blocks_mut();
        buf.put_u32_le(blocks.len() as u32);
        for b in blocks {
            put_f32s(&mut buf, &b.extra_state());
        }
        buf.freeze()
    }

    /// Restores a model from bytes produced by [`Ddnn::save_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on malformed or version-mismatched
    /// input.
    pub fn load_bytes(data: &[u8]) -> Result<Ddnn, CheckpointError> {
        let mut buf = Bytes::copy_from_slice(data);
        need(&buf, 6)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(CheckpointError::BadVersion { found: version });
        }
        let config = decode_config(&mut buf)?;
        let mut model = Ddnn::new(config);
        let n_params = {
            need(&buf, 4)?;
            buf.get_u32_le() as usize
        };
        {
            let mut params = model.params_mut();
            if params.len() != n_params {
                return Err(CheckpointError::Malformed {
                    reason: format!(
                        "checkpoint has {n_params} parameters, model expects {}",
                        params.len()
                    ),
                });
            }
            for p in params.iter_mut() {
                let xs = get_f32s(&mut buf)?;
                if xs.len() != p.value.len() {
                    return Err(CheckpointError::Malformed {
                        reason: format!(
                            "parameter `{}` has {} values, expected {}",
                            p.name,
                            xs.len(),
                            p.value.len()
                        ),
                    });
                }
                p.value.data_mut().copy_from_slice(&xs);
            }
        }
        let n_blocks = {
            need(&buf, 4)?;
            buf.get_u32_le() as usize
        };
        {
            let mut blocks = model.blocks_mut();
            if blocks.len() != n_blocks {
                return Err(CheckpointError::Malformed {
                    reason: format!(
                        "checkpoint has {n_blocks} stateful blocks, model expects {}",
                        blocks.len()
                    ),
                });
            }
            for b in blocks.iter_mut() {
                let xs = get_f32s(&mut buf)?;
                b.load_extra_state(&xs).map_err(|e| CheckpointError::Malformed {
                    reason: format!("block state: {e}"),
                })?;
            }
        }
        if buf.has_remaining() {
            return Err(CheckpointError::Malformed {
                reason: format!("{} trailing bytes", buf.remaining()),
            });
        }
        Ok(model)
    }

    /// Writes a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError::Io`] on filesystem errors.
    pub fn save_to(&mut self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        std::fs::write(path, self.save_bytes())?;
        Ok(())
    }

    /// Reads a checkpoint file written by [`Ddnn::save_to`].
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] on I/O or decoding failure.
    pub fn load_from(path: impl AsRef<Path>) -> Result<Ddnn, CheckpointError> {
        let data = std::fs::read(path)?;
        Ddnn::load_bytes(&data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::ExitThreshold;
    use ddnn_nn::Mode;
    use ddnn_tensor::rng::rng_from_seed;
    use ddnn_tensor::Tensor;

    fn small_config() -> DdnnConfig {
        DdnnConfig {
            num_devices: 2,
            device_filters: 2,
            cloud_filters: [4, 8],
            ..DdnnConfig::default()
        }
    }

    fn views(n: usize, devices: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = rng_from_seed(seed);
        (0..devices).map(|_| Tensor::rand_uniform([n, 3, 32, 32], 0.0, 1.0, &mut rng)).collect()
    }

    #[test]
    fn round_trip_preserves_inference_exactly() {
        let mut model = Ddnn::new(small_config());
        let v = views(5, 2, 0);
        // Perturb state away from init: one train-mode pass moves BN stats.
        model.forward(&v, Mode::Train).unwrap();
        let expected = model.infer(&v, ExitThreshold::new(0.5), None).unwrap();
        let bytes = model.save_bytes();
        let mut restored = Ddnn::load_bytes(&bytes).unwrap();
        let got = restored.infer(&v, ExitThreshold::new(0.5), None).unwrap();
        assert_eq!(got.predictions, expected.predictions);
        assert_eq!(got.exits, expected.exits);
        assert_eq!(got.local_entropy, expected.local_entropy);
    }

    #[test]
    fn round_trip_preserves_config() {
        let mut cfg = small_config();
        cfg.edge = Some(EdgeConfig { filters: 4, agg: AggregationScheme::AvgPool });
        cfg.cloud_precision = Precision::Float;
        cfg.seed = 77;
        let mut model = Ddnn::new(cfg.clone());
        let restored = Ddnn::load_bytes(&model.save_bytes()).unwrap();
        assert_eq!(restored.config(), &cfg);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(Ddnn::load_bytes(b"NOPE!!"), Err(CheckpointError::BadMagic)));
        assert!(Ddnn::load_bytes(b"DD").is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut model = Ddnn::new(small_config());
        let mut bytes = model.save_bytes().to_vec();
        bytes[4] = 99;
        assert!(matches!(Ddnn::load_bytes(&bytes), Err(CheckpointError::BadVersion { found: 99 })));
    }

    #[test]
    fn truncation_rejected() {
        let mut model = Ddnn::new(small_config());
        let bytes = model.save_bytes();
        let cut = &bytes[..bytes.len() / 2];
        assert!(matches!(Ddnn::load_bytes(cut), Err(CheckpointError::Malformed { .. })));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut model = Ddnn::new(small_config());
        let mut bytes = model.save_bytes().to_vec();
        bytes.extend_from_slice(&[0, 1, 2]);
        assert!(matches!(Ddnn::load_bytes(&bytes), Err(CheckpointError::Malformed { .. })));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ddnn-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ddnn");
        let mut model = Ddnn::new(small_config());
        model.save_to(&path).unwrap();
        let restored = Ddnn::load_from(&path).unwrap();
        assert_eq!(restored.config(), model.config());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(Ddnn::load_from("/nonexistent/ddnn.ckpt"), Err(CheckpointError::Io(_))));
    }
}
