//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate
//! (0.8 API surface).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset it uses: a seeded deterministic generator
//! ([`rngs::StdRng`], here xoshiro256++ seeded through SplitMix64), the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! and [`seq::SliceRandom::shuffle`]. The stream differs from upstream
//! `StdRng` (which is ChaCha12), but every property the workspace relies on
//! holds: determinism given a seed, distinct streams for distinct seeds,
//! and uniform high-quality output.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their "standard" distribution:
/// `[0, 1)` for floats, fair coin for `bool`, full range for integers.
pub trait Standard: Sized {
    /// Draws one standard sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types with a uniform sampler over an interval; the `T` of `gen_range`.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// `lo < hi` (half-open non-emptiness).
    fn lt(lo: Self, hi: Self) -> bool;
    /// `lo <= hi` (inclusive non-emptiness).
    fn le(lo: Self, hi: Self) -> bool;
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (hi - lo) * f32::sample(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        // 24 high bits -> [0, 1] inclusive of both ends.
        let u = (rng.next_u64() >> 40) as f32 / ((1u64 << 24) - 1) as f32;
        lo + (hi - lo) * u
    }
    fn lt(lo: Self, hi: Self) -> bool {
        lo < hi
    }
    fn le(lo: Self, hi: Self) -> bool {
        lo <= hi
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (hi - lo) * f64::sample(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
    fn lt(lo: Self, hi: Self) -> bool {
        lo < hi
    }
    fn le(lo: Self, hi: Self) -> bool {
        lo <= hi
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span/2^64 — negligible for the small
                // spans this workspace draws.
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn lt(lo: Self, hi: Self) -> bool {
                lo < hi
            }
            fn le(lo: Self, hi: Self) -> bool {
                lo <= hi
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly; the `gen_range` argument.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(T::lt(self.start, self.end), "gen_range on empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(T::le(lo, hi), "gen_range on empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Extension methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a standard sample (`[0, 1)` float, fair `bool`, …).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it to the full
    /// internal state deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn standard_f32_in_unit_interval_with_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f32> = (0..20_000).map(|_| rng.gen::<f32>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(5usize..9);
            assert!((5..9).contains(&i));
            let ii = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&ii));
        }
        // Inclusive float range can reach both endpoints' span.
        let f = rng.gen_range(1.0f32..=1.0);
        assert_eq!(f, 1.0);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
    }
}
