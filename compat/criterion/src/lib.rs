//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple warmup + timed-batch loop that prints
//! mean ns/iter — adequate for relative comparisons in this repo, with no
//! statistics engine. When the binary is invoked with `--test` (as
//! `cargo test --benches` does), every benchmark body runs exactly once so
//! the suite doubles as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing callback handle.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration, set by [`Bencher::iter`].
    ns_per_iter: f64,
    test_mode: bool,
}

impl Bencher {
    /// Times `f`, storing mean ns/iter. In `--test` mode runs it once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.ns_per_iter = 0.0;
            return;
        }
        // Warmup + calibration: grow the batch until it runs >= 10 ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            if t0.elapsed() >= Duration::from_millis(10) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        // One measured batch of the calibrated size.
        let t0 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.ns_per_iter = t0.elapsed().as_nanos() as f64 / batch as f64;
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    test_mode: bool,
    group_prefix: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode, group_prefix: None }
    }
}

impl Criterion {
    fn full_name(&self, name: &str) -> String {
        match &self.group_prefix {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: f64::NAN, test_mode: self.test_mode };
        f(&mut b);
        if self.test_mode {
            println!("test-mode ok: {}", self.full_name(name));
        } else if b.ns_per_iter.is_nan() {
            println!("{:<48} (no iter() call)", self.full_name(name));
        } else {
            println!("{:<48} {:>14.1} ns/iter", self.full_name(name), b.ns_per_iter);
        }
        self
    }

    /// Opens a named group; benchmarks registered on it are prefixed with
    /// the group name.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.to_string() }
    }
}

/// A named group of benchmarks (see [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the statistical sample size — accepted for API compatibility;
    /// this stub's measurement loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.c.group_prefix = Some(self.name.clone());
        self.c.bench_function(name, f);
        self.c.group_prefix = None;
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3)));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_function("mul", |b| b.iter(|| black_box(2u64) * black_box(3)));
        g.finish();
    }

    #[test]
    fn bench_macro_surface_runs() {
        // Force test mode so the unit test is fast regardless of argv.
        let mut c = Criterion { test_mode: true, group_prefix: None };
        sample_bench(&mut c);
    }
}
