//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the *small* subset of the `bytes` API it actually uses (see
//! `compat/README.md`): [`Bytes`] (a cheaply-cloneable shared byte buffer
//! with zero-copy slicing), [`BytesMut`] (a growable builder), and the
//! [`Buf`]/[`BufMut`] cursor traits with little-endian accessors.
//!
//! Semantics match the real crate for this subset; code written against it
//! compiles unchanged against the real `bytes`.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, shareable view into a byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a zero-copy sub-view of `range` (relative to this view).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice {start}..{end} out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + start, end: self.start + end }
    }

    /// The bytes of the view as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer used to build frames before freezing them.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source, little-endian accessors included.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies the next `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads the next `len` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes past end of buffer");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

/// Write cursor appending to a byte sink, little-endian writers included.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(513);
        b.put_u32_le(70_000);
        b.put_u64_le(1 << 40);
        b.put_f32_le(-1.5);
        b.put_slice(&[1, 2, 3]);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 4 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), -1.5);
        assert_eq!(r.copy_to_bytes(3).as_slice(), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_zero_copy_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(ss.as_slice(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1, 2]).slice(0..3);
    }
}
