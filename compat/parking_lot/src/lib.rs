//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset it uses: a [`Mutex`] whose `lock()` is infallible (poisoning
//! is absorbed rather than propagated, matching `parking_lot` semantics).
//! Implemented over `std::sync::Mutex`.

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutual-exclusion lock with an infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A panic while a
    /// previous holder had the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { guard: g },
            Err(poisoned) => MutexGuard { guard: poisoned.into_inner() },
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    guard: StdGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_mutates_shared_state() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1u8));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
