//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset it uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and `prop::collection::vec` strategies, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest this runner draws a fixed number of cases from a
//! generator seeded by the test's name — fully deterministic, no
//! shrinking, no persistence files. A failing case panics with the normal
//! `assert!` message; rerunning reproduces it exactly.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples the strategy `f` builds from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection::vec`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Element-count specification for [`vec`]: an exact length or a
        /// half-open range of lengths.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi_exclusive: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi_exclusive: r.end }
            }
        }

        /// Generates `Vec`s whose elements come from `element` and whose
        /// length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

pub mod test_runner {
    //! Deterministic case-generation for the `proptest!` macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases each property runs.
    pub const CASES: usize = 64;

    /// A generator seeded from the test's name (FNV-1a), so every property
    /// draws a reproducible, test-specific stream.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Defines property tests: each `fn` becomes a `#[test]` that samples its
/// arguments [`test_runner::CASES`] times from the given strategies.
#[macro_export]
macro_rules! proptest {
    ($(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            fn $name() {
                let mut __proptest_rng = $crate::test_runner::rng_for(stringify!($name));
                for __proptest_case in 0..$crate::test_runner::CASES {
                    let _ = __proptest_case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Property-test assertion; panics (fails the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! Everything a property-test file needs in scope.

    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            x in 1usize..5,
            f in -2.0f32..2.0,
            v in prop::collection::vec(0u64..10, 2..6),
        ) {
            prop_assert!((1..5).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn map_and_flat_map_compose(n in 2usize..4) {
            let doubled = (1usize..3).prop_map(move |k| k * n);
            let nested = (1usize..3).prop_flat_map(|k| prop::collection::vec(0usize..5, k));
            let mut rng = crate::test_runner::rng_for("compose");
            let d = doubled.sample(&mut rng);
            prop_assert!(d == n || d == 2 * n);
            let v = nested.sample(&mut rng);
            prop_assert!(!v.is_empty() && v.len() < 3);
        }
    }

    #[test]
    fn named_rng_is_deterministic() {
        use rand::Rng;
        let a: Vec<u64> = (0..4).map(|_| crate::test_runner::rng_for("t").gen::<u64>()).collect();
        let b: Vec<u64> = (0..4).map(|_| crate::test_runner::rng_for("t").gen::<u64>()).collect();
        assert_eq!(a, b);
    }
}
