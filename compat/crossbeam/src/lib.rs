//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset it uses: `crossbeam::channel` unbounded MPSC channels with
//! blocking, non-blocking, and deadline-bounded receives. Implemented over
//! `std::sync::mpsc` (whose `Sender` is `Send + Sync` since Rust 1.72),
//! with the same error-type surface as the real crate for this subset.

pub mod channel {
    //! Multi-producer single-consumer channels.

    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`] / [`Receiver::recv_deadline`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        tx: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { tx: self.tx.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message.
        ///
        /// # Errors
        ///
        /// Returns the message back if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Errors once every sender is dropped and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv().map_err(|_| RecvError)
        }

        /// Returns a queued message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks for a message up to `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the wait elapses,
        /// [`RecvTimeoutError::Disconnected`] when every sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Blocks for a message until `deadline`.
        ///
        /// # Errors
        ///
        /// Same as [`Receiver::recv_timeout`].
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let timeout = deadline.saturating_duration_since(Instant::now());
            self.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { tx }, Receiver { rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_deadline_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            let t0 = Instant::now();
            let r = rx.recv_deadline(t0 + Duration::from_millis(20));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
            assert!(t0.elapsed() >= Duration::from_millis(15));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn sender_is_send_and_sync() {
            fn assert_send_sync<T: Send + Sync>() {}
            assert_send_sync::<Sender<Vec<u8>>>();
        }
    }
}
